"""Component registries: lookup errors, duplicates, and extension by name."""

import pytest

from repro.api import AdmissionSpec, ExperimentSpec, TraceSpec, run
from repro.api.registry import (
    ADMISSION_POLICIES,
    ROUTING_POLICIES,
    SYSTEMS,
    Registry,
    register_admission_policy,
)


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("one", lambda: 1)
        assert registry.get("one")() == 1
        assert "one" in registry
        assert registry.names() == ["one"]

    def test_register_as_decorator(self):
        registry = Registry("widget")

        @registry.register("fn")
        def factory():
            return "made"

        assert registry.get("fn") is factory

    def test_unknown_key_lists_known(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1)
        with pytest.raises(KeyError, match="unknown widget 'beta'.*alpha"):
            registry.get("beta")

    def test_duplicate_rejected_without_overwrite(self):
        registry = Registry("widget")
        registry.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: 2)
        registry.register("x", lambda: 2, overwrite=True)
        assert registry.get("x")() == 2

    def test_non_callable_rejected(self):
        registry = Registry("widget")
        with pytest.raises(TypeError, match="callable"):
            registry.register("x", 42)

    def test_bad_key_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register("", lambda: 1)


class TestBuiltinRegistrations:
    def test_builtin_systems_registered(self):
        assert {"pim-only", "xpu-pim", "xpu-only", "gpu"} <= set(SYSTEMS.names())

    def test_builtin_admission_registered(self):
        assert {"fcfs", "capacity-aware", "priority"} <= set(ADMISSION_POLICIES.names())

    def test_builtin_routing_registered(self):
        assert {
            "round-robin",
            "least-outstanding",
            "capacity-aware",
            "session-affinity",
        } <= set(ROUTING_POLICIES.names())


class TestExtension:
    def test_custom_admission_policy_runs_by_name(self):
        """A user-registered policy plugs into specs with no other wiring."""

        class ReverseAdmission:
            name = "reverse"
            head_of_line = False

            def order(self, waiting):
                return list(reversed(waiting))

        register_admission_policy("test-reverse", ReverseAdmission, overwrite=True)
        try:
            spec = ExperimentSpec(
                name="custom-admission",
                admission=AdmissionSpec(policy="test-reverse"),
                trace=TraceSpec(
                    source="synthetic", num_requests=4, output_tokens=4
                ),
                step_stride=4,
            )
            report = run(spec)
            assert report.admission_policy == "reverse"
            assert report.requests_served == 4
        finally:
            ADMISSION_POLICIES._entries.pop("test-reverse", None)
