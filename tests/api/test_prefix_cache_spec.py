"""PrefixCacheSpec plumbing: spec -> build -> run -> report -> CLI JSON.

The acceptance pin for PR 5: with the cache disabled, ``run(spec)`` is
bit-identical to the PR 4 behaviour; with it enabled on a seeded
multi-turn session-affinity trace, hit/miss counters flow end to end and
follow-up turns get measurably cheaper.
"""

import json

import pytest

from repro.api import (
    ExperimentSpec,
    PrefillSpec,
    PrefixCacheSpec,
    RouterSpec,
    SystemSpec,
    TraceSpec,
    build,
    run,
)
from repro.api.cli import main
from repro.serving import PrefixCache

ENGINE_METRICS = (
    "total_output_tokens",
    "total_seconds",
    "steps",
    "average_batch_size",
    "peak_batch_size",
    "average_pim_utilization",
    "average_capacity_utilization",
    "requests_served",
    "requests_dropped",
    "makespan_s",
    "idle_seconds",
    "prefill_seconds_total",
    "latency",
)


def multi_turn_spec(**prefix_cache) -> ExperimentSpec:
    """Seven 4-turn conversations on a 4-replica fleet, chunked prefill.

    Seven sessions on four replicas on purpose: a session count that is a
    multiple of the replica count would let round-robin fake perfect
    affinity (session ``s`` of turn ``k`` lands on replica ``(k*N + s) %
    R = s % R``).
    """
    return ExperimentSpec(
        name="prefix-cache-multi-turn",
        system=SystemSpec(kind="pim-only", num_modules=1),
        prefill=PrefillSpec(mode="chunked", chunk_tokens=256),
        prefix_cache=PrefixCacheSpec(**prefix_cache),
        trace=TraceSpec(
            source="multi-turn",
            num_requests=28,
            num_sessions=7,
            turns_per_session=4,
            prompt_tokens=1024,
            followup_tokens=128,
            output_tokens=96,
            turn_gap_s=40.0,
        ),
        router=RouterSpec(replicas=4, policy="session-affinity"),
        seed=7,
        step_stride=4,
    )


class TestSpecPlumbing:
    def test_round_trips_through_json(self):
        spec = multi_turn_spec(enabled=True, capacity_tokens=4096)
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.prefix_cache.enabled
        assert spec.prefix_cache.capacity_tokens == 4096

    def test_defaults_to_disabled(self):
        assert ExperimentSpec().prefix_cache == PrefixCacheSpec(
            enabled=False, capacity_tokens=None
        )

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="prefix_cache.enabled"):
            PrefixCacheSpec(enabled="yes")
        with pytest.raises(ValueError, match="prefix_cache.capacity_tokens"):
            PrefixCacheSpec(enabled=True, capacity_tokens=0)
        with pytest.raises(ValueError, match="unknown field"):
            ExperimentSpec.from_dict({"prefix_cache": {"capacity": 10}})

    def test_trace_spec_validates_multi_turn_fields(self):
        with pytest.raises(ValueError, match="trace.turns_per_session"):
            TraceSpec(turns_per_session=-1)
        with pytest.raises(ValueError, match="trace.followup_tokens"):
            TraceSpec(followup_tokens=0)
        with pytest.raises(ValueError, match="trace.turn_gap_s"):
            TraceSpec(turn_gap_s=-1.0)

    def test_turn_gap_and_poisson_are_mutually_exclusive(self):
        # The Poisson process re-stamps every arrival, which would
        # silently discard the deterministic turn spacing the user asked
        # for (and deflate hit rates); the conflict must fail fast.
        with pytest.raises(ValueError, match="mutually exclusive"):
            TraceSpec(turn_gap_s=40.0, arrival="poisson", rate_rps=0.5)
        with pytest.raises(ValueError, match="mutually exclusive"):
            multi_turn_spec().with_overrides(
                {"trace.arrival": "poisson", "trace.rate_rps": 0.5}
            )
        # Poisson multi-turn is still reachable by dropping the gap.
        TraceSpec(
            source="multi-turn", num_requests=4, num_sessions=2,
            turns_per_session=2, turn_gap_s=0.0, arrival="poisson",
            rate_rps=0.5,
        )

    def test_num_requests_must_match_sessions_times_turns(self):
        # A silently ignored num_requests would make sweeps over it
        # meaningless and the report's num_requests wrong.
        spec = multi_turn_spec().with_overrides({"trace.num_requests": 100})
        with pytest.raises(ValueError, match=r"num_requests must equal"):
            build(spec)
        report = run(multi_turn_spec())
        assert report.num_requests == 28 == report.requests_served

    def test_multi_turn_source_requires_sessions_and_turns(self):
        spec = multi_turn_spec().with_overrides({"trace.num_sessions": 0})
        with pytest.raises(ValueError, match="num_sessions"):
            build(spec)
        spec = multi_turn_spec().with_overrides({"trace.turns_per_session": 0})
        with pytest.raises(ValueError, match="turns_per_session"):
            build(spec)

    def test_build_attaches_independent_caches_per_replica(self):
        built = build(multi_turn_spec(enabled=True, capacity_tokens=8192))
        caches = [engine.prefix_cache for engine in built.engines]
        assert all(isinstance(cache, PrefixCache) for cache in caches)
        assert len({id(cache) for cache in caches}) == len(caches)
        assert caches[0].capacity_tokens == 8192

    def test_build_disabled_attaches_nothing(self):
        built = build(multi_turn_spec())
        assert all(engine.prefix_cache is None for engine in built.engines)

    def test_multi_turn_source_keeps_its_session_layout(self):
        built = build(multi_turn_spec())
        sessions = [request.session for request in built.trace.requests]
        assert all(session is not None for session in sessions)
        # Turn-major order: the first num_sessions requests are turn 0.
        assert sessions[:7] == list(range(7))
        # Prompts accumulate within a session across turns.
        by_session = {}
        for request in built.trace.requests:
            by_session.setdefault(request.session, []).append(request)
        for turns in by_session.values():
            prompts = [turn.prompt_tokens for turn in turns]
            assert prompts == sorted(prompts)
            assert prompts[0] < prompts[-1]


class TestDisabledParity:
    def test_disabled_cache_is_bit_identical_to_no_cache_field(self):
        # The acceptance pin: prefix_cache.enabled=false must reproduce
        # the PR 4 arithmetic exactly -- same spec modulo the new sub-spec.
        spec = multi_turn_spec()
        explicit = run(spec.with_overrides({"prefix_cache.enabled": False}))
        default = run(spec)
        for left, right in zip(explicit.replica_results, default.replica_results, strict=True):
            for metric in ENGINE_METRICS:
                assert getattr(left, metric) == getattr(right, metric), metric
        assert explicit.latency == default.latency

    def test_disabled_cache_matches_direct_engine_run_exactly(self):
        # Single-engine spec vs a hand-built ServingEngine with no
        # prefix-cache argument at all (the pre-PR construction).
        from repro.serving import FCFSAdmission, ServingEngine
        from repro.serving.prefill import PrefillConfig, prefill_model_for

        spec = ExperimentSpec(
            name="parity",
            system=SystemSpec(kind="pim-only", num_modules=1),
            prefill=PrefillSpec(mode="chunked", chunk_tokens=256),
            trace=TraceSpec(
                source="multi-turn",
                num_requests=9,
                num_sessions=3,
                turns_per_session=3,
                prompt_tokens=512,
                followup_tokens=64,
                output_tokens=64,
                turn_gap_s=30.0,
            ),
            seed=11,
            step_stride=4,
        )
        report = run(spec)
        built = build(spec)
        direct = ServingEngine(
            system=built.system,
            admission=FCFSAdmission(),
            step_stride=4,
            prefill=PrefillConfig(
                model=prefill_model_for(built.system), chunk_tokens=256
            ),
        ).run(built.trace)
        for metric in ENGINE_METRICS:
            assert getattr(report.engine_result, metric) == getattr(direct, metric), metric
        assert report.prefix_hits == 0
        assert not report.prefix_cache_enabled

    def test_enabled_cache_on_sessionless_trace_changes_nothing(self):
        # No sessions -> no lookups -> identical arithmetic even enabled.
        base = ExperimentSpec(
            name="sessionless",
            system=SystemSpec(kind="pim-only", num_modules=1),
            prefill=PrefillSpec(mode="blocking"),
            trace=TraceSpec(source="synthetic", num_requests=8, prompt_tokens=256,
                            output_tokens=32),
            seed=3,
            step_stride=4,
        )
        off = run(base)
        on = run(base.with_overrides({"prefix_cache.enabled": True}))
        for metric in ENGINE_METRICS:
            assert getattr(on.engine_result, metric) == getattr(
                off.engine_result, metric
            ), metric
        assert on.prefix_cache_enabled
        assert on.prefix_hits == on.prefix_misses == 0


class TestEnabledOnMultiTurn:
    def test_counters_flow_spec_to_report(self):
        report = run(multi_turn_spec(enabled=True))
        assert report.prefix_cache_enabled
        assert report.prefix_hits > 0
        assert report.prefix_misses > 0
        assert report.prefix_hit_tokens > 0
        assert 0.0 < report.prefix_hit_rate < 1.0
        # The fleet view surfaces per-replica hit rates.
        rates = report.fleet.prefix_hit_rates
        assert len(rates) == 4
        assert any(rate > 0.0 for rate in rates)

    def test_session_affinity_beats_round_robin_on_hits_and_ttft(self):
        affinity = run(multi_turn_spec(enabled=True))
        round_robin = run(
            multi_turn_spec(enabled=True).with_overrides(
                {"router.policy": "round-robin"}
            )
        )
        # Affinity keeps each session's prefix on its replica; round-robin
        # scatters turns across caches that never hold the session prefix.
        assert affinity.prefix_hit_tokens > round_robin.prefix_hit_tokens
        assert affinity.prefix_hit_rate > round_robin.prefix_hit_rate
        assert affinity.ttft_mean_s < round_robin.ttft_mean_s
        assert affinity.ttft_p95_s < round_robin.ttft_p95_s

    def test_cache_enabled_cuts_ttft_under_affinity(self):
        on = run(multi_turn_spec(enabled=True))
        off = run(multi_turn_spec())
        assert on.ttft_mean_s < off.ttft_mean_s
        assert on.ttft_p95_s < off.ttft_p95_s
        assert on.total_output_tokens == off.total_output_tokens

    def test_identical_specs_reproduce_identical_reports(self):
        # Determinism under a fixed seed: trace, sessions, arrivals and
        # cache behaviour all derive from spec.seed.
        first = run(multi_turn_spec(enabled=True, capacity_tokens=8192))
        second = run(multi_turn_spec(enabled=True, capacity_tokens=8192))
        assert first.prefix_hits == second.prefix_hits
        assert first.prefix_misses == second.prefix_misses
        assert first.prefix_hit_tokens == second.prefix_hit_tokens
        assert first.latency == second.latency
        assert first.makespan_s == second.makespan_s

    def test_capacity_pressure_evicts_sessions(self):
        roomy = run(multi_turn_spec(enabled=True))
        tight = run(multi_turn_spec(enabled=True, capacity_tokens=1200))
        assert roomy.prefix_evictions == 0
        assert tight.prefix_evictions > 0
        assert tight.prefix_hit_tokens < roomy.prefix_hit_tokens

    def test_report_dict_is_json_safe_and_carries_counters(self):
        payload = run(multi_turn_spec(enabled=True)).to_dict()
        metrics = payload["metrics"]
        assert metrics["prefix_cache_enabled"] is True
        assert metrics["prefix_hits"] > 0
        assert metrics["prefix_hit_rate"] > 0.0
        assert metrics["prefix_hit_tokens"] > 0
        assert "prefix_hit_rate" in payload["replicas"][0]
        assert sum(r["prefix_hits"] for r in payload["replicas"]) == metrics["prefix_hits"]
        json.dumps(payload)


class TestCLI:
    def test_cli_json_carries_prefix_counters(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(multi_turn_spec(enabled=True).to_json())
        assert main(["run", str(spec_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["prefix_cache"]["enabled"] is True
        assert payload["metrics"]["prefix_hits"] > 0
        assert payload["metrics"]["prefix_hit_rate"] > 0.0

    def test_cli_set_toggles_the_cache(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(multi_turn_spec().to_json())
        assert main(
            [
                "run",
                str(spec_path),
                "--set",
                "prefix_cache.enabled=true",
                "--set",
                "prefix_cache.capacity_tokens=8192",
                "--format",
                "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["prefix_cache"]["capacity_tokens"] == 8192
        assert payload["metrics"]["prefix_hits"] > 0

    def test_validate_rejects_bad_capacity(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(multi_turn_spec().to_json())
        assert (
            main(
                [
                    "validate",
                    str(spec_path),
                    "--set",
                    "prefix_cache.capacity_tokens=0",
                ]
            )
            == 2
        )
        assert "prefix_cache.capacity_tokens" in capsys.readouterr().err

    def test_list_traces_includes_multi_turn(self, capsys):
        assert main(["list", "traces"]) == 0
        assert "multi-turn" in capsys.readouterr().out
