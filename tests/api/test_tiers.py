"""SLO tiers: TierSpec validation, trace tagging, tiered reports, overrides."""

import json

import pytest

from repro.api import ExperimentSpec, TierSpec, run
from repro.api.spec import (
    PreemptionSpec,
    SystemSpec,
    TraceSpec,
    apply_override,
)
from repro.workloads.traces import (
    assign_tiers,
    generate_trace,
    periodic_priorities,
    random_sessions,
)
from repro.workloads.datasets import get_dataset


def tiered_spec(**overrides) -> ExperimentSpec:
    kwargs = dict(
        name="tiered",
        system=SystemSpec(kind="pim-only", num_modules=1),
        trace=TraceSpec(
            source="synthetic", num_requests=12, prompt_tokens=256, output_tokens=32
        ),
        tiers=(
            TierSpec(
                name="premium",
                priority=5,
                share=0.25,
                ttft_deadline_s=2.0,
                tpot_deadline_s=0.5,
            ),
            TierSpec(name="best-effort"),
        ),
        step_stride=4,
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestTierSpecValidation:
    def test_share_out_of_range(self):
        for bad in (0, -0.25, 1.5, True):
            with pytest.raises(ValueError, match=r"share must be within \(0, 1\]"):
                TierSpec(share=bad)

    def test_sessions_must_be_non_empty_non_negative(self):
        for bad in ([], [-1], ["a"], [0.5]):
            with pytest.raises(ValueError, match="sessions must be a non-empty list"):
                TierSpec(sessions=bad)

    def test_share_and_sessions_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="share and sessions are mutually exclusive"):
            TierSpec(share=0.5, sessions=(0,))

    def test_deadlines_must_be_positive_finite(self):
        for field in ("ttft_deadline_s", "tpot_deadline_s"):
            for bad in (0, -1.0, float("inf"), float("nan")):
                with pytest.raises(ValueError, match=f"{field} must be a positive"):
                    TierSpec(**{field: bad})

    def test_catch_all_property(self):
        assert TierSpec().is_catch_all
        assert not TierSpec(share=0.5).is_catch_all
        assert not TierSpec(sessions=(1,)).is_catch_all


class TestCrossTierValidation:
    def test_duplicate_names_name_both_indices(self):
        with pytest.raises(
            ValueError, match=r"tiers\[1\].name 'premium' duplicates tiers\[0\]"
        ):
            tiered_spec(
                tiers=(TierSpec(name="premium", share=0.5), TierSpec(name="premium"))
            )

    def test_shares_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match=r"tiers\[\*\].share values must sum"):
            tiered_spec(
                tiers=(
                    TierSpec(name="a", share=0.7),
                    TierSpec(name="b", share=0.7),
                )
            )

    def test_at_most_one_catch_all(self):
        with pytest.raises(ValueError, match=r"tiers\[1\] and tiers\[0\] are both"):
            tiered_spec(tiers=(TierSpec(name="a"), TierSpec(name="b")))

    def test_session_claimed_twice_names_both_tiers(self):
        with pytest.raises(
            ValueError, match=r"tiers\[1\].sessions lists session 3 already"
        ):
            tiered_spec(
                tiers=(
                    TierSpec(name="a", sessions=(3,)),
                    TierSpec(name="b", sessions=(3, 4)),
                )
            )

    def test_tiers_exclude_deprecated_priority_every(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            tiered_spec(
                trace=TraceSpec(source="synthetic", num_requests=8, priority_every=4)
            )

    def test_session_tier_requires_sessions_in_trace(self):
        spec = tiered_spec(tiers=(TierSpec(name="vip", sessions=(0,)),))
        with pytest.raises(ValueError, match=r"tiers\[0\].sessions"):
            spec.validate()

    def test_from_dict_error_names_tier_index_and_field(self):
        data = tiered_spec().to_dict()
        data["tiers"][1]["share"] = 7
        with pytest.raises(ValueError, match=r"tiers\[1\].share must be within"):
            ExperimentSpec.from_dict(data)


class TestRoundTripAndHash:
    def test_tiered_spec_round_trips(self):
        spec = tiered_spec(
            tiers=(
                TierSpec(name="vip", priority=9, sessions=(1, 3)),
                TierSpec(name="bulk", share=0.5, tpot_deadline_s=0.1),
                TierSpec(name="rest"),
            ),
            trace=TraceSpec(source="synthetic", num_requests=12, num_sessions=4),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_untiered_dict_has_no_tiers_key(self):
        assert "tiers" not in ExperimentSpec().to_dict()

    def test_untiered_spec_hash_unchanged_by_tier_feature(self):
        # The tiers field must not perturb canonical JSON of untiered specs,
        # so spec hashes (report provenance) survive the API addition.
        spec = ExperimentSpec()
        assert spec.spec_hash == ExperimentSpec.from_dict(spec.to_dict()).spec_hash
        assert tiered_spec().spec_hash != tiered_spec(seed=1).spec_hash


class TestApplyOverrideListPaths:
    def test_set_tier_field_by_index(self):
        data = tiered_spec().to_dict()
        apply_override(data, "tiers.0.priority", 7)
        assert ExperimentSpec.from_dict(data).tiers[0].priority == 7

    def test_append_tier_at_end(self):
        data = tiered_spec(
            tiers=(TierSpec(name="a", share=0.25), TierSpec(name="b", share=0.25))
        ).to_dict()
        apply_override(data, "tiers.2.name", "c")
        assert data["tiers"][2] == {"name": "c"}

    def test_index_past_end_is_an_error(self):
        data = tiered_spec().to_dict()
        with pytest.raises(ValueError, match="tiers.5"):
            apply_override(data, "tiers.5.name", "x")

    def test_non_numeric_component_into_list_is_an_error(self):
        data = tiered_spec().to_dict()
        with pytest.raises(ValueError, match="must be a list index"):
            apply_override(data, "tiers.premium.priority", 7)


class TestAssignTiers:
    def trace(self, n=12, seed=0, sessions=0):
        trace = generate_trace(
            get_dataset("qmsum"), num_requests=n, seed=seed, output_tokens=16
        )
        if sessions:
            trace = random_sessions(trace, num_sessions=sessions, seed=seed)
        return trace

    def test_share_quarter_tags_every_fourth_request(self):
        tagged = assign_tiers(self.trace(), (TierSpec(name="p", share=0.25),))
        tiers = [request.tier for request in tagged.requests]
        assert [t == "p" for t in tiers] == [i % 4 == 0 for i in range(12)]

    def test_session_predicate_wins_over_share(self):
        trace = self.trace(sessions=3)
        vip_sessions = (0,)
        tagged = assign_tiers(
            trace,
            (
                TierSpec(name="vip", priority=9, sessions=vip_sessions),
                TierSpec(name="bulk", share=0.5),
            ),
        )
        for request in tagged.requests:
            if request.session in vip_sessions:
                assert request.tier == "vip" and request.priority == 9

    def test_catch_all_takes_leftovers_and_none_leaves_untiered(self):
        with_catch_all = assign_tiers(
            self.trace(), (TierSpec(name="p", share=0.25), TierSpec(name="rest"))
        )
        assert all(request.tier is not None for request in with_catch_all.requests)
        without = assign_tiers(self.trace(), (TierSpec(name="p", share=0.25),))
        assert sum(request.tier is None for request in without.requests) == 9

    def test_deadlines_are_stamped_onto_requests(self):
        tagged = assign_tiers(
            self.trace(),
            (TierSpec(name="p", share=0.25, ttft_deadline_s=1.0, tpot_deadline_s=0.1),),
        )
        tagged_requests = [r for r in tagged.requests if r.tier == "p"]
        assert all(r.ttft_deadline_s == 1.0 for r in tagged_requests)
        assert all(r.tpot_deadline_s == 0.1 for r in tagged_requests)

    def test_periodic_priorities_is_deprecated_but_equivalent(self):
        trace = self.trace(n=23, seed=3)
        with pytest.deprecated_call():
            legacy = periodic_priorities(trace, every=4, priority=5)
        tiered = assign_tiers(
            trace, (TierSpec(name="priority-5", priority=5, share=0.25),)
        )
        assert legacy == tiered
        priorities = [request.priority for request in legacy.requests]
        assert priorities == [5 if i % 4 == 0 else 0 for i in range(23)]


class TestTieredReports:
    def test_report_carries_per_tier_sections(self):
        report = run(tiered_spec())
        assert [tier.name for tier in report.tier_reports] == ["premium", "best-effort"]
        premium = report.tier_report("premium")
        assert premium.num_requests == 3 and premium.priority == 5
        assert report.tier_report("best-effort").num_requests == 9
        with pytest.raises(KeyError, match="no tier named 'gold'"):
            report.tier_report("gold")

    def test_to_dict_gains_goodput_and_tiers_sections(self):
        data = run(tiered_spec()).to_dict()
        assert set(data["metrics"]["tiers"]) == {"premium", "best-effort"}
        premium = data["metrics"]["tiers"]["premium"]
        for key in (
            "priority",
            "num_requests",
            "goodput",
            "goodput_rps",
            "ttft_attainment",
            "tpot_attainment",
            "preemptions",
            "latency",
        ):
            assert key in premium
        assert 0.0 <= data["metrics"]["goodput"] <= 1.0
        json.dumps(data)  # JSON-safe

    def test_untiered_report_schema_is_unchanged(self):
        data = run(tiered_spec(tiers=())).to_dict()
        assert "tiers" not in data["metrics"]
        assert "goodput" not in data["metrics"]
        assert "tiers" not in data["spec"]

    def test_leftover_requests_land_in_untiered_bucket(self):
        report = run(tiered_spec(tiers=(TierSpec(name="premium", share=0.25),)))
        assert [tier.name for tier in report.tier_reports] == ["premium", "untiered"]
        assert report.tier_report("untiered").num_requests == 9

    def test_summary_table_appends_tier_rows(self):
        tiered = run(tiered_spec()).summary_table()
        assert "SLO tiers" in tiered and "premium" in tiered
        assert "SLO tiers" not in run(tiered_spec(tiers=())).summary_table()

    def test_goodput_counts_unfinished_requests_against_the_tier(self):
        # An impossible TPOT deadline fails every premium request without
        # changing how many finish.
        strict = run(
            tiered_spec(
                tiers=(
                    TierSpec(name="premium", share=0.25, tpot_deadline_s=1e-9),
                    TierSpec(name="best-effort"),
                )
            )
        )
        premium = strict.tier_report("premium")
        assert premium.requests_finished == premium.num_requests
        assert premium.goodput == 0.0 and premium.tpot_attainment == 0.0
        assert strict.tier_report("best-effort").goodput == 1.0


class TestLegacyPriorityParity:
    def test_priority_every_reports_match_pre_tier_schema(self):
        # The deprecated trace.priority_every path now routes through
        # assign_tiers internally; reports must keep the untiered schema and
        # tag the same requests with the same priorities.
        spec = tiered_spec(
            tiers=(),
            trace=TraceSpec(
                source="synthetic",
                num_requests=12,
                prompt_tokens=256,
                output_tokens=32,
                priority_every=4,
                priority_value=5,
            ),
        )
        report = run(spec)
        assert report.tier_reports == ()
        assert "tiers" not in report.to_dict()["metrics"]
        records = report.fleet.request_records
        assert sorted(record.priority for record in records) == [0] * 9 + [5] * 3

    def test_priority_every_equals_equivalent_tier_spec(self):
        legacy = run(
            tiered_spec(
                tiers=(),
                trace=TraceSpec(
                    source="synthetic",
                    num_requests=12,
                    prompt_tokens=256,
                    output_tokens=32,
                    priority_every=4,
                    priority_value=5,
                ),
                preemption=PreemptionSpec(policy="evict-priority-lru"),
            )
        )
        tiered = run(
            tiered_spec(
                tiers=(TierSpec(name="priority-5", priority=5, share=0.25),),
                preemption=PreemptionSpec(policy="evict-priority-lru"),
            )
        )
        assert legacy.latency == tiered.latency
        assert legacy.makespan_s == tiered.makespan_s
        assert legacy.preemptions == tiered.preemptions


class TestCLI:
    def test_list_tiers_names_the_spec_fields(self, capsys):
        from repro.api.cli import main

        assert main(["list", "tiers"]) == 0
        out = capsys.readouterr().out
        for field in ("name", "priority", "share", "sessions", "ttft_deadline_s"):
            assert field in out

    def test_set_tier_field_error_names_index_and_field(self, tmp_path, capsys):
        from repro.api.cli import main

        path = tmp_path / "spec.json"
        path.write_text(tiered_spec().to_json(), encoding="utf-8")
        assert main(["validate", str(path), "--set", "tiers.1.share=7"]) == 2
        assert "tiers[1].share must be within (0, 1]" in capsys.readouterr().err

    def test_set_appends_and_edits_tiers(self, tmp_path, capsys):
        from repro.api.cli import main

        path = tmp_path / "spec.json"
        path.write_text(
            tiered_spec(tiers=(TierSpec(name="premium", share=0.25),)).to_json(),
            encoding="utf-8",
        )
        assert (
            main(
                [
                    "validate",
                    str(path),
                    "--set",
                    "tiers.0.ttft_deadline_s=1.5",
                    "--set",
                    "tiers.1.name=overflow",
                ]
            )
            == 0
        )
        assert "ok:" in capsys.readouterr().out
