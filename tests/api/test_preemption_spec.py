"""PreemptionSpec plumbing: spec -> build -> run -> report -> CLI JSON."""

import json

import pytest

from repro.api import (
    ExperimentSpec,
    ModelSpec,
    PreemptionSpec,
    SystemSpec,
    TraceSpec,
    build,
    run,
)
from repro.api.cli import main
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.serving import FCFSAdmission, ServingEngine
from repro.serving.preemption import EvictLRU, NoPreemption

ENGINE_METRICS = (
    "total_output_tokens",
    "total_seconds",
    "steps",
    "average_batch_size",
    "peak_batch_size",
    "average_pim_utilization",
    "average_capacity_utilization",
    "requests_served",
    "requests_dropped",
    "makespan_s",
    "idle_seconds",
    "latency",
)


def pressure_spec(**preemption) -> ExperimentSpec:
    """A deliberately capacity-constrained single-module scenario.

    One PIM module leaves ~3GB of KV capacity (3072 chunks); twelve
    synthetic requests growing to 768 tokens each need 4608 chunks, so the
    up-front-commit contract can only run eight at once.
    """
    return ExperimentSpec(
        name="preemption-pressure",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", num_modules=1, pimphony="full"),
        preemption=PreemptionSpec(**preemption),
        trace=TraceSpec(
            source="synthetic", num_requests=12, prompt_tokens=256, output_tokens=512
        ),
        seed=5,
        step_stride=4,
    )


class TestSpecPlumbing:
    def test_round_trips_through_json(self):
        spec = pressure_spec(policy="evict-lru", mode="swap", swap_bandwidth_gbps=32.0)
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.preemption.policy == "evict-lru"

    def test_validation_rejects_unknown_policy_and_bad_mode(self):
        with pytest.raises(ValueError, match="preemption.policy"):
            pressure_spec(policy="evict-psychic").validate()
        with pytest.raises(ValueError, match="preemption.mode"):
            PreemptionSpec(mode="teleport")
        with pytest.raises(ValueError, match="swap_bandwidth_gbps"):
            PreemptionSpec(swap_bandwidth_gbps=0.0)

    def test_registered_policies_resolve(self):
        for policy in ("none", "evict-lru", "evict-largest", "evict-youngest"):
            pressure_spec(policy=policy).validate()

    def test_build_attaches_preemption_config(self):
        built = build(pressure_spec(policy="evict-lru"))
        assert built.engine.preemption is not None
        assert isinstance(built.engine.preemption.policy, EvictLRU)
        assert built.engine.lifecycle_admission

    def test_build_none_policy_attaches_nothing(self):
        built = build(pressure_spec())
        assert built.engine.preemption is None
        assert not built.engine.lifecycle_admission

    def test_fleet_engines_get_independent_policy_instances(self):
        spec = pressure_spec(policy="evict-lru").with_overrides(
            {"router": {"replicas": 2, "policy": "round-robin"}}
        )
        built = build(spec)
        policies = [engine.preemption.policy for engine in built.engines]
        assert policies[0] is not policies[1]

    def test_ewma_alpha_threads_to_router(self):
        spec = pressure_spec().with_overrides(
            {"router": {"replicas": 2, "ewma_alpha": 0.7}}
        )
        assert build(spec).router.ewma_alpha == 0.7
        with pytest.raises(ValueError, match="ewma_alpha"):
            pressure_spec().with_overrides({"router": {"replicas": 2, "ewma_alpha": 1.7}})


class TestNonePolicyParity:
    def test_none_policy_reproduces_pre_lifecycle_metrics_exactly(self):
        # The acceptance pin: an explicit preemption.policy="none" spec must
        # reproduce the pre-PR engine arithmetic to the last float.
        spec = pressure_spec(policy="none")
        report = run(spec)
        assert report.preemption_policy == "none"
        assert report.preemptions == 0

        built = build(spec)
        model = get_model("LLM-7B-32K")
        from repro.baselines.cent import cent_system_config

        system = cent_system_config(model, num_modules=1, pimphony=PIMphonyConfig.full())
        direct = ServingEngine(
            system=system, admission=FCFSAdmission(), step_stride=4
        ).run(built.trace)
        for metric in ENGINE_METRICS:
            assert getattr(report.engine_result, metric) == getattr(direct, metric), metric

    def test_default_spec_equals_explicit_none(self):
        default = run(pressure_spec())
        explicit = run(pressure_spec(policy="none"))
        for metric in ENGINE_METRICS:
            assert getattr(explicit.engine_result, metric) == getattr(
                default.engine_result, metric
            ), metric


class TestEvictLRUUnderPressure:
    def test_higher_peak_admissions_and_utilization_than_upfront_commit(self):
        baseline = run(pressure_spec(policy="none"))
        preempting = run(pressure_spec(policy="evict-lru"))

        # Everyone completes under both contracts...
        assert baseline.requests_served == 12
        assert preempting.requests_served == 12
        assert preempting.total_output_tokens == baseline.total_output_tokens
        # ...but the lifecycle contract packs strictly more concurrent
        # work into the same cache and keeps it fuller.
        assert preempting.peak_batch_size > baseline.peak_batch_size
        assert (
            preempting.average_capacity_utilization
            > baseline.average_capacity_utilization
        )
        assert preempting.preemptions > 0
        assert preempting.requeue_delay_mean_s > 0.0

    def test_counters_surface_in_report_dict(self):
        payload = run(pressure_spec(policy="evict-lru")).to_dict()
        assert payload["preemption_policy"] == "evict-lru"
        assert payload["metrics"]["preemptions"] > 0
        assert payload["metrics"]["recompute_tokens"] > 0
        assert payload["metrics"]["requeue_delay_mean_s"] > 0.0
        assert payload["replicas"][0]["preemptions"] == payload["metrics"]["preemptions"]
        json.dumps(payload)  # stays JSON-safe


class TestCLI:
    def test_set_preemption_policy_flows_to_report(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(pressure_spec().to_json())
        exit_code = main(
            [
                "run",
                str(spec_path),
                "--set",
                "preemption.policy=evict-lru",
                "--format",
                "json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["preemption_policy"] == "evict-lru"
        assert payload["spec"]["preemption"]["policy"] == "evict-lru"
        assert payload["metrics"]["preemptions"] > 0

    def test_validate_rejects_unknown_policy(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(pressure_spec().to_json())
        exit_code = main(
            ["validate", str(spec_path), "--set", "preemption.policy=evict-psychic"]
        )
        assert exit_code == 2
        assert "preemption.policy" in capsys.readouterr().err

    def test_list_includes_preemption_section(self, capsys):
        assert main(["list", "preemption"]) == 0
        out = capsys.readouterr().out
        assert "evict-lru" in out and "none" in out


def test_no_preemption_config_reuse_is_safe():
    # NoPreemption carries no state; the same instance may be shared.
    policy = NoPreemption()
    assert policy.select(()) is None
