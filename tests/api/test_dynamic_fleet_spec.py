"""Dynamic-fleet specs: fast/scalar parity, equivalence pins, hash stability.

The fleet timeline must not disturb anything that existed before it:
shipped spec files keep their exact hashes (the new sub-specs elide at
default), a plain ``arrival.process='poisson'`` reproduces the legacy
``trace.arrival='poisson'`` switch seed for seed, and the vectorized
engine reports the same dynamic-fleet metrics as the scalar engine to
1e-9 across a randomized sweep of arrival processes, failures and
autoscaling.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.api import ExperimentSpec, run
from repro.api.build import build_trace

SPEC_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples" / "specs"

#: Pinned hashes of the specs shipped before the fleet timeline existed.
#: These must never move: the new sub-specs (arrival / fleet_events /
#: autoscaler / window_s) elide at their defaults, so a spec that does
#: not use them serializes byte-for-byte as it always did.
LEGACY_SPEC_HASHES = {
    "disagg_prompt_heavy.json": "e265e9e207e9",
    "fleet_4replica_poisson.json": "8b51101ed76b",
    "multi_turn_prefix_cache.json": "2917deaee010",
    "pim_only_qmsum.json": "8b547d087e2e",
    "preemption_evict_lru.json": "5ed9952102c7",
    "tiered_slo_oversubscribed.json": "eae1ab494bef",
    "xpu_only_qmsum.json": "8833e8330020",
    "xpu_pim_long_context.json": "a4ce32d94c14",
}

NEW_SPEC_KEYS = ("arrival", "fleet_events", "autoscaler", "window_s")


def _load(name: str) -> ExperimentSpec:
    return ExperimentSpec.from_dict(json.loads((SPEC_DIR / name).read_text()))


class TestLegacySpecStability:
    def test_shipped_spec_hashes_are_bit_identical(self):
        on_disk = {path.name for path in SPEC_DIR.glob("*.json")}
        assert set(LEGACY_SPEC_HASHES) <= on_disk
        for name, expected in LEGACY_SPEC_HASHES.items():
            assert _load(name).spec_hash == expected, name

    def test_legacy_specs_serialize_without_new_keys(self):
        for name in LEGACY_SPEC_HASHES:
            payload = _load(name).to_dict()
            for key in NEW_SPEC_KEYS:
                assert key not in payload, f"{name} grew a {key!r} key"

    def test_legacy_report_has_no_new_blocks(self):
        report = run(_load("pim_only_qmsum.json")).to_dict()
        assert "fleet_timeline" not in report
        assert "windows" not in report["metrics"]
        assert "replica_hours" not in report["metrics"]
        assert "peak_replicas" not in report["metrics"]


class TestArrivalEquivalencePin:
    def test_arrival_poisson_matches_legacy_trace_switch(self):
        base = {
            "name": "pin",
            "model": {"name": "LLM-7B-32K"},
            "system": {"kind": "pim-only", "pimphony": "full"},
            "trace": {
                "source": "dataset",
                "dataset": "qmsum",
                "num_requests": 24,
                "output_tokens": 8,
            },
            "seed": 11,
        }
        legacy = ExperimentSpec.from_dict(
            {**base, "trace": {**base["trace"], "arrival": "poisson", "rate_rps": 40.0}}
        )
        modern = ExperimentSpec.from_dict(
            {**base, "arrival": {"process": "poisson", "rate_rps": 40.0}}
        )
        assert build_trace(legacy) == build_trace(modern)


def _dynamic_spec_data(seed: int) -> dict:
    """One deterministic point of the randomized dynamic sweep."""
    import random

    rng = random.Random(seed)
    process = rng.choice(["diurnal", "burst"])
    arrival: dict = {"process": process, "rate_rps": rng.uniform(25.0, 50.0)}
    if process == "diurnal":
        arrival["period_s"] = rng.uniform(0.8, 2.0)
        arrival["amplitude"] = rng.uniform(0.2, 0.8)
    else:
        arrival["bursts"] = [
            {
                "start_s": 0.2,
                "duration_s": rng.uniform(0.2, 0.4),
                "multiplier": rng.uniform(2.0, 5.0),
            }
        ]
    data: dict = {
        "name": f"dynamic-parity-{seed}",
        "model": {"name": "LLM-7B-32K"},
        "system": {"kind": "pim-only", "pimphony": "full"},
        "trace": {
            "source": "dataset",
            "dataset": "qmsum",
            "num_requests": 32,
            "output_tokens": 12,
        },
        "router": {"replicas": 2, "policy": "least-outstanding"},
        "arrival": arrival,
        "window_s": 0.5,
        "seed": seed,
        "step_stride": 4,
    }
    if rng.random() < 0.75:
        down_s = rng.uniform(0.2, 0.5)
        data["fleet_events"] = [
            {"at_s": down_s, "kind": "replica_down", "replica": 1},
            {"at_s": down_s + rng.uniform(0.3, 0.6), "kind": "replica_up", "replica": 1},
        ]
    if rng.random() < 0.75:
        data["autoscaler"] = {
            "signal": rng.choice(["queue-depth", "ttft-ewma"]),
            "scale_up_threshold": rng.uniform(2.0, 4.0),
            "scale_down_threshold": rng.uniform(0.1, 0.5),
            "min_replicas": 1,
            "max_replicas": 4,
            "interval_s": rng.uniform(0.1, 0.25),
            "cooldown_s": 0.0,
            "cold_start_s": rng.uniform(0.1, 0.3),
        }
    if rng.random() < 0.5:
        data["preemption"] = {"policy": "evict-lru"}
    if rng.random() < 0.5:
        data["prefix_cache"] = {"enabled": True}
        data["trace"]["num_sessions"] = 8
    return data


def _assert_float_close(ours, theirs, label):
    assert ours == pytest.approx(theirs, abs=1e-9, rel=1e-12), label


class TestDynamicFastScalarParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fast_engine_matches_scalar_on_dynamic_fleet(self, seed):
        data = _dynamic_spec_data(seed)
        scalar = run(ExperimentSpec.from_dict({**data, "engine": {"mode": "scalar"}}))
        fast = run(ExperimentSpec.from_dict({**data, "engine": {"mode": "fast"}}))

        assert fast.requests_served == scalar.requests_served
        assert fast.requests_dropped == scalar.requests_dropped
        assert fast.total_output_tokens == scalar.total_output_tokens
        _assert_float_close(fast.makespan_s, scalar.makespan_s, "makespan")
        for field in dataclasses.fields(scalar.latency):
            _assert_float_close(
                getattr(fast.latency, field.name),
                getattr(scalar.latency, field.name),
                f"latency.{field.name}",
            )

        assert len(fast.windows) == len(scalar.windows)
        for ours, theirs in zip(fast.windows, scalar.windows, strict=True):
            assert ours.arrivals == theirs.arrivals
            assert ours.finished == theirs.finished
            assert ours.goodput_requests == theirs.goodput_requests
            assert ours.ttft_attained == theirs.ttft_attained
            for field in dataclasses.fields(theirs.latency):
                _assert_float_close(
                    getattr(ours.latency, field.name),
                    getattr(theirs.latency, field.name),
                    f"window latency.{field.name}",
                )

        ft_fast, ft_scalar = fast.fleet_timeline, scalar.fleet_timeline
        assert (ft_fast is None) == (ft_scalar is None)
        if ft_fast is not None and ft_scalar is not None:
            assert ft_fast.failures == ft_scalar.failures
            assert ft_fast.restarts == ft_scalar.restarts
            assert ft_fast.kv_lost_tokens == ft_scalar.kv_lost_tokens
            assert ft_fast.peak_replicas == ft_scalar.peak_replicas
            assert ft_fast.scale_ups == ft_scalar.scale_ups
            assert ft_fast.scale_downs == ft_scalar.scale_downs
            _assert_float_close(
                ft_fast.replica_seconds, ft_scalar.replica_seconds, "replica_seconds"
            )

    def test_dynamic_report_round_trips_to_json(self):
        report = run(ExperimentSpec.from_dict(_dynamic_spec_data(0)))
        payload = report.to_dict()
        json.dumps(payload)
        assert "fleet_timeline" in payload
        assert "windows" in payload["metrics"]
        series = payload["metrics"]["windows"]["series"]
        # Dropped requests never reach an engine, so they have no record
        # and no window membership; everything else does.
        assert sum(window["arrivals"] for window in series) == 32 - report.requests_dropped
