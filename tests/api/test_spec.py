"""ExperimentSpec construction, validation and serialization round-trips."""

import json

import pytest

from repro.api import (
    AdmissionSpec,
    AllocatorSpec,
    ExperimentSpec,
    ModelSpec,
    ParallelismSpec,
    PrefillSpec,
    RouterSpec,
    SystemSpec,
    TraceSpec,
)


def full_spec() -> ExperimentSpec:
    """A spec exercising every sub-spec with non-default values."""
    return ExperimentSpec(
        name="round-trip",
        model=ModelSpec(name="LLM-7B-128K", context_window=64 * 1024),
        system=SystemSpec(kind="xpu-pim", num_modules=4, pimphony="tcp+dcs"),
        parallelism=ParallelismSpec(tensor_parallel=2, pipeline_parallel=2),
        allocator=AllocatorSpec(mode="paged"),
        admission=AdmissionSpec(policy="capacity-aware", max_batch_size=8),
        prefill=PrefillSpec(mode="chunked", model="system", chunk_tokens=1024),
        trace=TraceSpec(
            source="synthetic",
            num_requests=32,
            output_tokens=16,
            prompt_tokens=512,
            heavy_every=4,
            heavy_prompt_tokens=4096,
            arrival="poisson",
            rate_rps=100.0,
            num_sessions=4,
            priority_every=8,
            priority_value=5,
        ),
        router=RouterSpec(replicas=4, policy="session-affinity", probe_context_tokens=256),
        seed=42,
        step_stride=8,
        latency_cache_bucket=512,
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = full_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert spec.router is None

    def test_to_dict_is_json_safe(self):
        json.dumps(full_spec().to_dict())

    def test_missing_sub_specs_take_defaults(self):
        spec = ExperimentSpec.from_dict({"name": "minimal"})
        assert spec.model == ModelSpec()
        assert spec.trace == TraceSpec()
        assert spec.router is None

    def test_spec_hash_stable_and_sensitive(self):
        spec = full_spec()
        assert spec.spec_hash == full_spec().spec_hash
        assert spec.spec_hash != ExperimentSpec().spec_hash
        assert len(spec.spec_hash) == 12

    def test_with_overrides(self):
        spec = ExperimentSpec().with_overrides(
            {"system.pimphony": "baseline", "trace.num_requests": 64}
        )
        assert spec.system.pimphony == "baseline"
        assert spec.trace.num_requests == 64
        # untouched axes keep their defaults
        assert spec.admission == AdmissionSpec()

    def test_with_overrides_creates_router(self):
        spec = ExperimentSpec().with_overrides({"router.replicas": 4})
        assert spec.router is not None
        assert spec.router.replicas == 4


class TestFieldValidation:
    def test_unknown_top_level_field(self):
        with pytest.raises(ValueError, match="unknown field.*'frobnicate'"):
            ExperimentSpec.from_dict({"frobnicate": 1})

    def test_unknown_sub_spec_field_names_path(self):
        with pytest.raises(ValueError, match="system: unknown field.*'modules'"):
            ExperimentSpec.from_dict({"system": {"modules": 8}})

    @pytest.mark.parametrize(
        ("data", "message"),
        [
            ({"trace": {"num_requests": 0}}, "trace.num_requests"),
            ({"trace": {"num_requests": -3}}, "trace.num_requests"),
            ({"trace": {"arrival": "bursty"}}, "trace.arrival"),
            ({"trace": {"arrival": "poisson"}}, "trace.rate_rps"),
            ({"system": {"pimphony": "everything"}}, "system.pimphony"),
            ({"system": {"num_modules": 2.5}}, "system.num_modules"),
            ({"allocator": {"mode": "virtual"}}, "allocator.mode"),
            ({"prefill": {"mode": "eager"}}, "prefill.mode"),
            ({"prefill": {"per_token_s": -1.0}}, "prefill.per_token_s"),
            ({"router": {"replicas": 0}}, "router.replicas"),
            ({"seed": -1}, "seed"),
            ({"step_stride": 0}, "step_stride"),
            ({"model": {"name": ""}}, "model.name"),
        ],
    )
    def test_invalid_field_messages_carry_field_path(self, data, message):
        with pytest.raises(ValueError, match=message):
            ExperimentSpec.from_dict(data)

    def test_parallelism_must_be_set_together(self):
        with pytest.raises(ValueError, match="parallelism.tensor_parallel"):
            ParallelismSpec(tensor_parallel=2)

    def test_parallelism_product_must_match_module_count(self):
        with pytest.raises(ValueError, match="covers 4 modules"):
            ExperimentSpec(
                system=SystemSpec(num_modules=8),
                parallelism=ParallelismSpec(tensor_parallel=2, pipeline_parallel=2),
            )


class TestRegistryKeyValidation:
    def test_unknown_system_kind(self):
        spec = ExperimentSpec(system=SystemSpec(kind="warp-drive"))
        with pytest.raises(ValueError, match="system.kind.*warp-drive.*registered"):
            spec.validate()

    def test_unknown_admission_policy(self):
        spec = ExperimentSpec(admission=AdmissionSpec(policy="lottery"))
        with pytest.raises(ValueError, match="admission.policy.*lottery"):
            spec.validate()

    def test_unknown_routing_policy(self):
        spec = ExperimentSpec(router=RouterSpec(policy="darts"))
        with pytest.raises(ValueError, match="router.policy.*darts"):
            spec.validate()

    def test_unknown_prefill_model(self):
        spec = ExperimentSpec(prefill=PrefillSpec(mode="blocking", model="oracle"))
        with pytest.raises(ValueError, match="prefill.model.*oracle"):
            spec.validate()

    def test_unknown_trace_source(self):
        spec = ExperimentSpec(trace=TraceSpec(source="prod-logs"))
        with pytest.raises(ValueError, match="trace.source.*prod-logs"):
            spec.validate()

    def test_unknown_model_name(self):
        spec = ExperimentSpec(model=ModelSpec(name="LLM-1T-1M"))
        with pytest.raises(ValueError, match="model.name.*LLM-1T-1M"):
            spec.validate()

    def test_unknown_dataset(self):
        spec = ExperimentSpec(trace=TraceSpec(dataset="secret-bench"))
        with pytest.raises(ValueError, match="trace.dataset.*secret-bench"):
            spec.validate()

    def test_validate_returns_self_for_chaining(self):
        spec = ExperimentSpec()
        assert spec.validate() is spec
