"""python -m repro CLI: run / validate / list, --set and --sweep."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_DIR = REPO_ROOT / "examples" / "specs"
SMALL_SPEC = {
    "name": "cli-test",
    "trace": {"source": "synthetic", "num_requests": 4, "output_tokens": 8},
    "step_stride": 8,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SMALL_SPEC))
    return str(path)


class TestRun:
    def test_run_json_output(self, spec_file, capsys):
        assert main(["run", spec_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "cli-test"
        assert payload["metrics"]["requests_served"] == 4

    def test_run_table_output(self, spec_file, capsys):
        assert main(["run", spec_file]) == 0
        out = capsys.readouterr().out
        assert "tokens/s" in out
        assert "cli-test" in out

    def test_set_overrides(self, spec_file, capsys):
        assert (
            main(
                [
                    "run",
                    spec_file,
                    "--set",
                    "trace.num_requests=6",
                    "--set",
                    "name=renamed",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "renamed"
        assert payload["metrics"]["requests_served"] == 6

    def test_sweep_cartesian(self, spec_file, capsys):
        assert (
            main(
                [
                    "run",
                    spec_file,
                    "--sweep",
                    "system.pimphony=baseline,full",
                    "--sweep",
                    "trace.num_requests=4,8",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["runs"]) == 4
        overrides = [run["overrides"] for run in payload["runs"]]
        assert {"system.pimphony": "baseline", "trace.num_requests": 4} in overrides
        assert {"system.pimphony": "full", "trace.num_requests": 8} in overrides

    def test_output_file(self, spec_file, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert main(["run", spec_file, "--output", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["metrics"]["requests_served"] == 4

    def test_invalid_registry_key_exits_2(self, spec_file, capsys):
        code = main(["run", spec_file, "--set", "system.kind=warp-drive"])
        assert code == 2
        assert "warp-drive" in capsys.readouterr().err

    def test_bad_assignment_rejected(self, spec_file):
        with pytest.raises(SystemExit):
            main(["run", spec_file, "--set", "no-equals-sign"])

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        code = main(["run", str(broken)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_override_path_exits_2(self, spec_file, capsys):
        code = main(["run", spec_file, "--set", "a..b=1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_valid_spec(self, spec_file, capsys):
        assert main(["validate", spec_file]) == 0
        assert "ok: cli-test" in capsys.readouterr().out

    def test_invalid_field_exits_2(self, spec_file, capsys):
        code = main(["validate", spec_file, "--set", "trace.num_requests=0"])
        assert code == 2
        assert "trace.num_requests" in capsys.readouterr().err


class TestList:
    def test_list_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("systems:", "admission:", "routing:", "prefill:", "traces:",
                        "models:", "datasets:"):
            assert section in out
        assert "pim-only" in out

    def test_list_one_section(self, capsys):
        assert main(["list", "systems"]) == 0
        out = capsys.readouterr().out
        assert "xpu-pim" in out
        assert "datasets:" not in out


class TestExampleSpecs:
    """Every checked-in spec file parses, validates and round-trips."""

    @pytest.mark.parametrize(
        "spec_path", sorted(SPEC_DIR.glob("*.json")), ids=lambda p: p.stem
    )
    def test_spec_file_validates_and_round_trips(self, spec_path):
        from repro.api import ExperimentSpec

        data = json.loads(spec_path.read_text())
        spec = ExperimentSpec.from_dict(data).validate()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_specs_cover_required_scenarios(self):
        kinds = set()
        replicas = set()
        for path in SPEC_DIR.glob("*.json"):
            data = json.loads(path.read_text())
            kinds.add(data.get("system", {}).get("kind", "pim-only"))
            router = data.get("router")
            replicas.add(router["replicas"] if router else 1)
        assert {"pim-only", "xpu-only", "xpu-pim"} <= kinds
        assert 4 in replicas


def test_python_dash_m_repro_entry_point(tmp_path):
    """The module is executable as `python -m repro` from a clean process."""
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SMALL_SPEC))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(spec), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["metrics"]["requests_served"] == 4
