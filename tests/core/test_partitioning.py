"""Tests for HFP vs TCP intra-module partitioning (paper Sec. IV, Fig. 4/6)."""

import pytest

from repro.core.partitioning import (
    AttentionTask,
    ChannelAssignment,
    HeadFirstPartitioner,
    TokenCentricPartitioner,
    evaluate_assignment,
    tasks_from_batch,
)


def long_context_tasks(num_requests: int = 2, kv_heads: int = 2, tokens: int = 32768):
    """A long-context decode step: few (request, head) pairs, many tokens."""
    return tasks_from_batch([tokens] * num_requests, kv_heads)


class TestTaskConstruction:
    def test_tasks_from_batch_counts(self):
        tasks = tasks_from_batch([100, 200], num_kv_heads=4, group_size=2)
        assert len(tasks) == 8
        assert {task.group_size for task in tasks} == {2}

    def test_invalid_task_rejected(self):
        with pytest.raises(ValueError):
            AttentionTask(request_id=0, kv_head=0, context_length=-1)
        with pytest.raises(ValueError):
            AttentionTask(request_id=0, kv_head=0, context_length=1, group_size=0)


class TestAssignment:
    def test_channel_bounds_checked(self):
        assignment = ChannelAssignment(num_channels=4)
        task = AttentionTask(0, 0, 100)
        with pytest.raises(ValueError):
            assignment.add(4, task, 10)
        with pytest.raises(ValueError):
            assignment.add(0, task, -1)

    def test_zero_token_slices_not_recorded(self):
        assignment = ChannelAssignment(num_channels=2)
        assignment.add(0, AttentionTask(0, 0, 100), 0)
        assert assignment.active_channels == 0


class TestHFP:
    def test_few_long_tasks_leave_channels_idle(self):
        """The Fig. 6(b,c) pathology: 4 tasks cannot fill 16 channels."""
        assignment = HeadFirstPartitioner().partition(long_context_tasks(), num_channels=16)
        assert assignment.active_channels == 4
        assert assignment.load_balance < 0.5

    def test_length_imbalance_caps_at_slowest_channel(self):
        tasks = tasks_from_batch([32768, 4096], num_kv_heads=1)
        assignment = HeadFirstPartitioner().partition(tasks, num_channels=2)
        loads = assignment.tokens_per_channel()
        assert max(loads) == 32768
        assert assignment.load_balance == pytest.approx((32768 + 4096) / (2 * 32768))

    def test_tasks_never_split(self):
        tasks = long_context_tasks()
        assignment = HeadFirstPartitioner().partition(tasks, num_channels=16)
        for slices in assignment.slices.values():
            for task_slice in slices:
                assert task_slice.tokens == task_slice.task.context_length


class TestTCP:
    def test_all_channels_active_regardless_of_batch(self):
        assignment = TokenCentricPartitioner().partition(long_context_tasks(1, 1), 16)
        assert assignment.active_channels == 16

    def test_tokens_conserved_and_balanced(self):
        tasks = tasks_from_batch([10_000, 7_000], num_kv_heads=2)
        assignment = TokenCentricPartitioner().partition(tasks, num_channels=16)
        assert sum(assignment.tokens_per_channel()) == 2 * (10_000 + 7_000)
        assert assignment.load_balance > 0.99

    def test_remainder_tokens_distributed(self):
        tasks = [AttentionTask(0, 0, 17)]
        assignment = TokenCentricPartitioner().partition(tasks, num_channels=16)
        loads = assignment.tokens_per_channel()
        assert sum(loads) == 17
        assert max(loads) - min(loads) <= 1


class TestEvaluation:
    def test_tcp_beats_hfp_on_long_contexts(self, channel, timing):
        """The Fig. 4 effect: TCP restores channel utilisation and latency."""
        tasks = long_context_tasks(num_requests=2, kv_heads=2, tokens=16384)
        hfp = HeadFirstPartitioner().partition(tasks, 16)
        tcp = TokenCentricPartitioner().partition(tasks, 16)
        hfp_eval = evaluate_assignment(hfp, 128, channel, timing, policy="static")
        tcp_eval = evaluate_assignment(tcp, 128, channel, timing, policy="static")
        assert tcp_eval.channel_utilization > 2 * hfp_eval.channel_utilization
        assert tcp_eval.module_cycles < hfp_eval.module_cycles

    def test_tcp_reduction_overhead_is_negligible(self, channel, timing):
        """The paper reports <0.2% overhead for the SV cross-channel reduce."""
        tasks = long_context_tasks(num_requests=1, kv_heads=2, tokens=16384)
        tcp = TokenCentricPartitioner().partition(tasks, 16)
        evaluation = evaluate_assignment(tcp, 128, channel, timing, policy="dcs")
        assert evaluation.reduction_cycles < 0.01 * evaluation.module_cycles

    def test_empty_assignment_evaluates_to_zero(self, channel, timing):
        assignment = TokenCentricPartitioner().partition([], 16)
        evaluation = evaluate_assignment(assignment, 128, channel, timing, policy="dcs")
        assert evaluation.module_cycles == 0.0
        assert evaluation.channel_utilization == 0.0
