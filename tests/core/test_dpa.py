"""Tests for the DPA controller (paper Sec. VI)."""

import pytest

from repro.core.dpa import DPAController, make_static_allocator
from repro.memory.static_alloc import AllocationError


def make_controller(capacity_mb: int = 64, chunk_kb: int = 256, bpt: int = 512) -> DPAController:
    return DPAController(
        capacity_bytes=capacity_mb * 1024 * 1024,
        bytes_per_token=bpt,
        chunk_bytes=chunk_kb * 1024,
    )


class TestLifecycle:
    def test_admit_step_release_roundtrip(self):
        controller = make_controller()
        controller.admit(0, initial_tokens=1000)
        assert controller.token_lengths[0] == 1000
        controller.step(0, 5)
        assert controller.token_lengths[0] == 1005
        controller.release(0)
        assert 0 not in controller.token_lengths
        assert controller.allocator.allocated_chunk_count == 0

    def test_capacity_check_before_admission(self):
        controller = make_controller(capacity_mb=1, chunk_kb=1024)
        assert controller.can_admit(100)
        controller.admit(0, 100)
        assert not controller.can_admit(100)
        with pytest.raises(AllocationError):
            controller.admit(1, 100)

    def test_utilization_improves_over_static_reservation(self):
        """The Fig. 19 effect: chunked allocation tracks live tokens."""
        controller = make_controller()
        static = make_static_allocator(
            capacity_bytes=64 * 1024 * 1024, bytes_per_token=512, max_context_tokens=32768
        )
        controller.admit(0, 8000)
        static.admit(0, 8000)
        assert controller.capacity_utilization > 2 * static.capacity_utilization


class TestInstructionFootprint:
    def test_dpa_footprint_constant_in_context(self):
        controller = make_controller()
        short = controller.instruction_footprint(4096, kv_heads=8, layers=32)
        long = controller.instruction_footprint(1024 * 1024, kv_heads=8, layers=32)
        assert short == long

    def test_static_footprint_grows_linearly(self):
        short = DPAController.static_instruction_footprint(4096, kv_heads=8)
        long = DPAController.static_instruction_footprint(8192, kv_heads=8)
        assert long == 2 * short

    def test_dpa_orders_of_magnitude_smaller_at_long_context(self):
        """The Fig. 10(c) claim: DPA avoids instruction-buffer bloat."""
        controller = make_controller()
        dpa = controller.instruction_footprint(128 * 1024, kv_heads=8)
        static = DPAController.static_instruction_footprint(128 * 1024, kv_heads=8)
        assert static > 100 * dpa

    def test_host_interventions_rare(self):
        controller = make_controller(chunk_kb=1024, bpt=512)
        controller.admit(0, 100)
        before = controller.host_interventions
        for _ in range(100):
            controller.step(0)
        # 100 tokens at 512B/token never crosses the 1MB chunk boundary.
        assert controller.host_interventions == before
