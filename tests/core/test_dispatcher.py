"""Tests for the on-module instruction dispatcher (paper Fig. 11(a))."""

import pytest

from repro.compiler.dpa_encoding import encode_attention_loop
from repro.compiler.lowering import lower_operator_to_instructions
from repro.compiler.ir import Operation, OpType
from repro.core.dispatcher import OnModuleDispatcher
from repro.memory.va2pa import VA2PATable
from repro.pim.isa import PIMOpcode


def make_dispatcher() -> OnModuleDispatcher:
    table = VA2PATable(chunk_bytes=1024 * 1024)
    dispatcher = OnModuleDispatcher(va2pa=table)
    operation = Operation(
        name="qkt_kv0", op_type=OpType.MATMUL, attrs={"role": "qkt", "kv_head": 0}
    )
    body = lower_operator_to_instructions(operation, channel_mask=0xFFFF, op_size=4)
    dispatcher.load_kernel("qkt", encode_attention_loop(body))
    return dispatcher


class TestDispatcher:
    def test_assign_and_dispatch(self):
        dispatcher = make_dispatcher()
        dispatcher.assign_request(1, initial_tokens=64)
        stream = dispatcher.dispatch("qkt", 1)
        assert stream
        assert all(not instruction.opcode.is_control for instruction in stream)

    def test_expanded_length_tracks_token_length(self):
        dispatcher = make_dispatcher()
        dispatcher.assign_request(1, initial_tokens=64)
        short = dispatcher.expanded_length("qkt", 1)
        dispatcher.advance_token(1, 640)
        assert dispatcher.expanded_length("qkt", 1) > short

    def test_token_progression_requires_no_host_messages(self):
        dispatcher = make_dispatcher()
        dispatcher.assign_request(1, initial_tokens=64)
        messages = dispatcher.host_messages
        for _ in range(50):
            dispatcher.advance_token(1)
            dispatcher.dispatch("qkt", 1)
        assert dispatcher.host_messages == messages

    def test_assignment_and_completion_are_host_messages(self):
        dispatcher = make_dispatcher()
        dispatcher.assign_request(1, 10)
        dispatcher.complete_request(1)
        assert dispatcher.host_messages == 2

    def test_va2pa_translation_applied_to_mac_rows(self):
        dispatcher = make_dispatcher()
        dispatcher.va2pa.map(1, 0, 7)
        dispatcher.assign_request(1, initial_tokens=16)
        stream = dispatcher.dispatch("qkt", 1)
        mac_rows = {inst.row for inst in stream if inst.opcode is PIMOpcode.MAC}
        assert 7 in mac_rows

    def test_duplicate_assignment_rejected(self):
        dispatcher = make_dispatcher()
        dispatcher.assign_request(1, 10)
        with pytest.raises(ValueError):
            dispatcher.assign_request(1, 10)

    def test_unknown_kernel_or_request_rejected(self):
        dispatcher = make_dispatcher()
        dispatcher.assign_request(1, 10)
        with pytest.raises(KeyError):
            dispatcher.dispatch("sv", 1)
        with pytest.raises(KeyError):
            dispatcher.dispatch("qkt", 99)

    def test_buffer_footprint_stays_small(self):
        """The paper: all dispatcher buffers fit well under the 512KB GPR."""
        dispatcher = make_dispatcher()
        for request in range(32):
            dispatcher.assign_request(request, 1000)
        assert dispatcher.buffer_bytes < 200 * 1024
