"""Tests for the PIMphony configuration facade."""

import pytest

from repro.core.dcs import DCSScheduler
from repro.core.orchestrator import PIMphony, PIMphonyConfig
from repro.core.partitioning import HeadFirstPartitioner, TokenCentricPartitioner
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import StaticAllocator
from repro.pim.scheduling import StaticScheduler
from repro.pim.timing import aimx_timing


class TestConfig:
    def test_labels(self):
        assert PIMphonyConfig.baseline().label == "baseline"
        assert PIMphonyConfig.tcp_only().label == "TCP"
        assert PIMphonyConfig.tcp_dcs().label == "TCP+DCS"
        assert PIMphonyConfig.full().label == "TCP+DCS+DPA"

    def test_incremental_sweep_matches_paper_order(self):
        sweep = PIMphonyConfig.incremental_sweep()
        assert [config.label for config in sweep] == [
            "baseline",
            "TCP",
            "TCP+DCS",
            "TCP+DCS+DPA",
        ]

    def test_custom_name_overrides_label(self):
        config = PIMphonyConfig(tcp=True, dcs=False, dpa=False, name="ablation-A")
        assert config.label == "ablation-A"


class TestStrategySelection:
    def test_baseline_strategies(self):
        orchestrator = PIMphony(PIMphonyConfig.baseline())
        assert isinstance(orchestrator.partitioner(), HeadFirstPartitioner)
        assert isinstance(orchestrator.scheduler(aimx_timing()), StaticScheduler)
        assert orchestrator.scheduling_policy == "static"
        allocator = orchestrator.make_allocator(1024**3, 1024, 32768)
        assert isinstance(allocator, StaticAllocator)

    def test_full_strategies(self):
        orchestrator = PIMphony(PIMphonyConfig.full())
        assert isinstance(orchestrator.partitioner(), TokenCentricPartitioner)
        assert isinstance(orchestrator.scheduler(aimx_timing()), DCSScheduler)
        assert orchestrator.scheduling_policy == "dcs"
        allocator = orchestrator.make_allocator(1024**3, 1024, 32768)
        assert isinstance(allocator, ChunkedAllocator)

    def test_default_is_full(self):
        assert PIMphony().config.label == "TCP+DCS+DPA"

    def test_dpa_controller_requires_dpa(self):
        with pytest.raises(ValueError):
            PIMphony(PIMphonyConfig.baseline()).dpa_controller(1024**3, 1024)
        controller = PIMphony().dpa_controller(1024**3, 1024)
        assert controller.capacity_bytes == 1024**3

    def test_repr_mentions_label(self):
        assert "TCP+DCS+DPA" in repr(PIMphony())
