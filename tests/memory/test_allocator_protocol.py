"""Tests for the unified can_admit/reserve/release allocator protocol."""

import pytest

from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import AllocationError, StaticAllocator
from repro.serving.interfaces import KVAllocator


def chunked(capacity_chunks=8, chunk_bytes=1024, bytes_per_token=16):
    return ChunkedAllocator(
        capacity_bytes=capacity_chunks * chunk_bytes,
        bytes_per_token=bytes_per_token,
        chunk_bytes=chunk_bytes,
    )


class TestProtocolConformance:
    def test_both_allocators_satisfy_protocol(self):
        static = StaticAllocator(
            capacity_bytes=1 << 20, max_context_tokens=1024, bytes_per_token=16
        )
        assert isinstance(static, KVAllocator)
        assert isinstance(chunked(), KVAllocator)


class TestStaticReserve:
    def test_reserve_respects_static_maximum(self):
        allocator = StaticAllocator(
            capacity_bytes=1 << 20, max_context_tokens=1024, bytes_per_token=16
        )
        with pytest.raises(AllocationError):
            allocator.reserve(0, initial_tokens=100, final_tokens=2048)
        allocator.reserve(0, initial_tokens=100, final_tokens=1024)
        assert allocator.num_requests == 1

    def test_can_admit_rejects_over_window_requests(self):
        allocator = StaticAllocator(
            capacity_bytes=1 << 20, max_context_tokens=1024, bytes_per_token=16
        )
        assert allocator.can_admit(1024)
        assert not allocator.can_admit(1025)
        assert allocator.can_admit()  # legacy no-argument form still works

    def test_reserve_rejects_shrinking_final(self):
        allocator = StaticAllocator(
            capacity_bytes=1 << 20, max_context_tokens=1024, bytes_per_token=16
        )
        with pytest.raises(ValueError):
            allocator.reserve(0, initial_tokens=100, final_tokens=50)


class TestChunkedReserve:
    def test_reserve_commits_final_context(self):
        allocator = chunked(capacity_chunks=8)
        # 8 chunks total; final of 256 tokens * 16 B = 4096 B = 4 chunks.
        allocator.reserve(0, initial_tokens=64, final_tokens=256)
        assert allocator.committed_chunk_count == 4
        assert allocator.allocated_chunk_count == 1  # only the prefix mapped
        # A second identical reservation fits, a third does not.
        assert allocator.can_admit(256)
        allocator.reserve(1, initial_tokens=64, final_tokens=256)
        assert not allocator.can_admit(256)
        with pytest.raises(AllocationError):
            allocator.reserve(2, initial_tokens=64, final_tokens=256)

    def test_growth_within_reservation_never_fails(self):
        allocator = chunked(capacity_chunks=4)
        allocator.reserve(0, initial_tokens=1, final_tokens=256)  # all 4 chunks
        for _ in range(255):
            allocator.append_token(0)
        assert allocator.allocated_chunk_count == 4

    def test_release_frees_commitment(self):
        allocator = chunked(capacity_chunks=4)
        allocator.reserve(0, initial_tokens=64, final_tokens=256)
        assert not allocator.can_admit(256)
        allocator.release(0)
        assert allocator.committed_chunk_count == 0
        assert allocator.can_admit(256)

    def test_legacy_admit_growth_claims_uncommitted_chunks(self):
        allocator = chunked(capacity_chunks=4)
        allocator.admit(0, initial_tokens=64)  # commits 1 chunk
        assert allocator.committed_chunk_count == 1
        for _ in range(192):
            allocator.append_token(0)  # grows commitment to 4 chunks
        assert allocator.committed_chunk_count == 4
        with pytest.raises(AllocationError):
            allocator.append_token(0, count=64)

    def test_va2pa_entries_compat_view(self):
        allocator = chunked(capacity_chunks=4)
        allocator.reserve(0, initial_tokens=128, final_tokens=128)  # 2 chunks
        entries = allocator.table.entries
        assert set(entries) == {(0, 0), (0, 1)}
        assert sorted(entries.values()) == sorted(allocator.table.chunks_of(0))
        # The view is read-only: writes fail loudly instead of silently
        # mutating a rebuilt copy.
        with pytest.raises(TypeError):
            entries[(0, 2)] = 3

    def test_growth_cannot_steal_reserved_chunks(self):
        allocator = chunked(capacity_chunks=4)
        allocator.admit(0, initial_tokens=64)        # 1 chunk mapped/committed
        allocator.reserve(1, initial_tokens=64, final_tokens=192)  # commits 3
        # Request 0 would need a second chunk, but every remaining chunk is
        # committed to request 1's reservation.
        with pytest.raises(AllocationError):
            allocator.append_token(0, count=64)
