"""Conformance tests for the KVLifecycle contract across all allocators.

Parametrised over every allocator implementation (StaticAllocator,
ChunkedAllocator, DPAController) so signature drift between the concrete
classes and the protocols in ``repro.serving.interfaces`` fails loudly.
"""

import inspect

import pytest

from repro.core.dpa import DPAController
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.lifecycle import CapacityExceeded, PreemptedState
from repro.memory.static_alloc import AllocationError, StaticAllocator
from repro.serving.interfaces import KVAllocator, KVLifecycle

CHUNK = 1024
BYTES_PER_TOKEN = 16
TOKENS_PER_CHUNK = CHUNK // BYTES_PER_TOKEN  # 64


def make_static(chunks=8):
    return StaticAllocator(
        capacity_bytes=chunks * CHUNK,
        max_context_tokens=2 * TOKENS_PER_CHUNK,  # two requests fit at 8 chunks
        bytes_per_token=BYTES_PER_TOKEN,
    )


def make_chunked(chunks=8):
    return ChunkedAllocator(
        capacity_bytes=chunks * CHUNK,
        bytes_per_token=BYTES_PER_TOKEN,
        chunk_bytes=CHUNK,
    )


def make_dpa(chunks=8):
    return DPAController(
        capacity_bytes=chunks * CHUNK,
        bytes_per_token=BYTES_PER_TOKEN,
        chunk_bytes=CHUNK,
    )


ALLOCATORS = [
    pytest.param(make_static, id="static"),
    pytest.param(make_chunked, id="chunked"),
    pytest.param(make_dpa, id="dpa"),
]


@pytest.mark.parametrize("factory", ALLOCATORS)
class TestProtocolConformance:
    def test_satisfies_lifecycle_protocol(self, factory):
        allocator = factory()
        assert isinstance(allocator, KVAllocator)
        assert isinstance(allocator, KVLifecycle)

    def test_signatures_are_aligned(self, factory):
        """The satellite fix: no more final_tokens/tokens parameter drift."""
        allocator = factory()
        can_admit = inspect.signature(allocator.can_admit)
        assert next(iter(can_admit.parameters)) == "tokens"
        reserve = inspect.signature(allocator.reserve)
        assert list(reserve.parameters) == ["request_id", "initial_tokens", "final_tokens"]
        assert reserve.parameters["final_tokens"].default is None
        grow = inspect.signature(allocator.grow)
        assert list(grow.parameters) == ["request_id", "count"]
        assert grow.parameters["count"].default == 1
        assert list(inspect.signature(allocator.preempt).parameters) == ["request_id"]
        assert list(inspect.signature(allocator.restore).parameters) == [
            "request_id",
            "state",
        ]

    def test_reserve_grow_release_round_trip(self, factory):
        allocator = factory()
        assert allocator.can_admit(TOKENS_PER_CHUNK)
        allocator.reserve(0, TOKENS_PER_CHUNK)
        allocator.grow(0, 4)
        assert allocator.num_requests == 1
        assert allocator.used_bytes == (TOKENS_PER_CHUNK + 4) * BYTES_PER_TOKEN
        allocator.release(0)
        assert allocator.num_requests == 0
        assert allocator.used_bytes == 0

    def test_preempt_restore_round_trip(self, factory):
        allocator = factory()
        allocator.reserve(0, TOKENS_PER_CHUNK)
        allocator.grow(0, 3)
        state = allocator.preempt(0)
        assert isinstance(state, PreemptedState)
        assert state.request_id == 0
        assert state.tokens == TOKENS_PER_CHUNK + 3
        assert state.kv_bytes == state.tokens * BYTES_PER_TOKEN
        assert allocator.num_requests == 0
        assert allocator.used_bytes == 0
        allocator.restore(0, state)
        assert allocator.num_requests == 1
        assert allocator.used_bytes == state.tokens * BYTES_PER_TOKEN
        allocator.grow(0)  # restored requests keep growing
        allocator.release(0)

    def test_preempt_unknown_request_raises_key_error(self, factory):
        with pytest.raises(KeyError):
            factory().preempt(42)

    def test_restore_into_full_allocator_raises_capacity_exceeded(self, factory):
        allocator = factory(chunks=4)
        allocator.reserve(0, TOKENS_PER_CHUNK)
        state = allocator.preempt(0)
        # Fill the allocator to the brim, then try to bring the victim back.
        allocator.reserve(1, 2 * TOKENS_PER_CHUNK, 2 * TOKENS_PER_CHUNK)
        allocator.reserve(2, 2 * TOKENS_PER_CHUNK, 2 * TOKENS_PER_CHUNK)
        with pytest.raises(CapacityExceeded):
            allocator.restore(0, state)
        # CapacityExceeded is an AllocationError: legacy handlers still work.
        with pytest.raises(AllocationError):
            allocator.restore(0, state)
        allocator.release(1)
        allocator.restore(0, state)  # now it fits again
        assert allocator.num_requests == 2


class TestIncrementalChunkedContract:
    def test_reserve_without_final_commits_only_the_prefix(self):
        allocator = make_chunked(chunks=8)
        allocator.reserve(0, TOKENS_PER_CHUNK)  # one chunk, no more
        assert allocator.committed_chunk_count == 1
        assert allocator.allocated_chunk_count == 1
        # The other 7 chunks stay admittable -- unlike the legacy contract,
        # which would have committed the final context up front.
        assert allocator.can_admit(7 * TOKENS_PER_CHUNK)

    def test_grow_raises_capacity_exceeded_when_chunks_run_out(self):
        allocator = make_chunked(chunks=2)
        allocator.reserve(0, TOKENS_PER_CHUNK)
        allocator.reserve(1, TOKENS_PER_CHUNK)
        with pytest.raises(CapacityExceeded):
            allocator.grow(0)
        # The failed grow must not corrupt state: request 0 still holds
        # exactly one chunk and a release drains cleanly.
        assert allocator.allocated_chunk_count == 2
        allocator.release(0)
        allocator.grow(1)  # now there is a free chunk
        allocator.release(1)
        assert allocator.free_chunk_count == 2

    def test_restore_reinstates_legacy_commitment(self):
        allocator = make_chunked(chunks=8)
        allocator.reserve(0, TOKENS_PER_CHUNK, 4 * TOKENS_PER_CHUNK)
        state = allocator.preempt(0)
        assert state.committed_chunks == 4
        allocator.restore(0, state)
        assert allocator.committed_chunk_count == 4
        # Growth within the restored commitment cannot fail, even with the
        # rest of the allocator committed elsewhere.
        allocator.reserve(1, 4 * TOKENS_PER_CHUNK, 4 * TOKENS_PER_CHUNK)
        allocator.grow(0, 3 * TOKENS_PER_CHUNK)
        assert allocator.allocated_chunk_count == 8

    def test_static_grow_never_raises_capacity_exceeded(self):
        allocator = make_static(chunks=8)
        allocator.reserve(0, 1)
        # In-window growth is covered by the T_max reservation...
        allocator.grow(0, 2 * TOKENS_PER_CHUNK - 1)
        # ...and past-window growth is a contract violation, not pressure.
        with pytest.raises(AllocationError) as excinfo:
            allocator.grow(0)
        assert not isinstance(excinfo.value, CapacityExceeded)

    def test_could_ever_fit_distinguishes_pressure_from_impossible(self):
        allocator = make_chunked(chunks=4)
        allocator.reserve(0, 4 * TOKENS_PER_CHUNK)  # full
        assert not allocator.can_admit(TOKENS_PER_CHUNK)  # transient pressure
        assert allocator.could_ever_fit(4 * TOKENS_PER_CHUNK)
        assert not allocator.could_ever_fit(5 * TOKENS_PER_CHUNK)  # impossible
