"""Tests for the lazy chunked (DPA-style) allocator."""

import pytest

from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import AllocationError


def make_allocator(capacity_chunks: int = 16, chunk_kb: int = 64, bpt: int = 256) -> ChunkedAllocator:
    return ChunkedAllocator(
        capacity_bytes=capacity_chunks * chunk_kb * 1024,
        bytes_per_token=bpt,
        chunk_bytes=chunk_kb * 1024,
    )


class TestAllocation:
    def test_chunks_allocated_on_demand(self):
        allocator = make_allocator()
        allocator.admit(0, initial_tokens=10)
        assert allocator.allocated_chunk_count == 1
        assert allocator.free_chunk_count == 15

    def test_chunks_needed_rounds_up(self):
        allocator = make_allocator(chunk_kb=64, bpt=256)
        tokens_per_chunk = 64 * 1024 // 256
        assert allocator.chunks_needed(tokens_per_chunk) == 1
        assert allocator.chunks_needed(tokens_per_chunk + 1) == 2
        assert allocator.chunks_needed(0) == 0

    def test_growth_allocates_new_chunk_only_at_boundary(self):
        allocator = make_allocator()
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, tokens_per_chunk - 1)
        assert allocator.allocated_chunk_count == 1
        allocator.append_token(0, 1)
        assert allocator.allocated_chunk_count == 1
        allocator.append_token(0, 1)
        assert allocator.allocated_chunk_count == 2

    def test_admission_fails_when_out_of_chunks(self):
        allocator = make_allocator(capacity_chunks=1)
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, tokens_per_chunk)
        with pytest.raises(AllocationError):
            allocator.admit(1, 1)

    def test_growth_fails_when_out_of_chunks(self):
        allocator = make_allocator(capacity_chunks=1)
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, tokens_per_chunk)
        with pytest.raises(AllocationError):
            allocator.append_token(0, 1)

    def test_release_returns_chunks_for_reuse(self):
        allocator = make_allocator(capacity_chunks=2)
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, 2 * tokens_per_chunk)
        allocator.release(0)
        assert allocator.free_chunk_count == 2
        allocator.admit(1, 2 * tokens_per_chunk)
        assert allocator.allocated_chunk_count == 2


class TestTranslationIntegration:
    def test_va2pa_mappings_track_chunks(self):
        allocator = make_allocator()
        allocator.admit(7, allocator.chunk_bytes // allocator.bytes_per_token * 3)
        assert len(allocator.table.chunks_of(7)) == 3

    def test_non_contiguous_physical_chunks_supported(self):
        allocator = make_allocator(capacity_chunks=4)
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, tokens_per_chunk)
        allocator.admit(1, tokens_per_chunk)
        allocator.release(0)
        allocator.admit(2, 2 * tokens_per_chunk)
        chunks = allocator.table.chunks_of(2)
        assert len(chunks) == 2
        assert len(set(chunks)) == 2


class TestUtilization:
    def test_utilization_counts_only_live_tokens(self):
        allocator = make_allocator()
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, tokens_per_chunk // 2)
        assert allocator.capacity_utilization == pytest.approx(0.5)
        assert allocator.fragmentation_bytes == allocator.chunk_bytes // 2

    def test_fragmentation_limited_to_last_chunk(self):
        allocator = make_allocator()
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, 3 * tokens_per_chunk + 1)
        assert allocator.fragmentation_bytes < allocator.chunk_bytes

    def test_host_interventions_counted(self):
        allocator = make_allocator()
        tokens_per_chunk = allocator.chunk_bytes // allocator.bytes_per_token
        allocator.admit(0, 10)
        start = allocator.host_interventions
        # Growth within the chunk requires no host involvement.
        allocator.append_token(0, 1)
        assert allocator.host_interventions == start
        allocator.append_token(0, tokens_per_chunk)
        assert allocator.host_interventions == start + 1
