"""Property-based leak tests for the KV lifecycle contract.

A seeded random interleaving of reserve / grow / preempt / restore /
release must never leak or double-free chunks: after *every* operation the
allocator's books balance against an independently tracked reference
model, and a full drain returns it to pristine state.  Operations that
fail (CapacityExceeded) must leave the allocator untouched.
"""

import contextlib
import random

import pytest

from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.lifecycle import CapacityExceeded
from repro.memory.static_alloc import AllocationError, StaticAllocator

CHUNK = 1024
BYTES_PER_TOKEN = 16
TOKENS_PER_CHUNK = CHUNK // BYTES_PER_TOKEN


def check_chunked_invariants(allocator: ChunkedAllocator, live: dict[int, int]) -> None:
    """The allocator's books must balance against the reference model."""
    assert allocator.free_chunk_count + allocator.allocated_chunk_count == (
        allocator.total_chunks
    )
    assert allocator.allocated_chunk_count == sum(
        allocator.chunks_needed(tokens) for tokens in live.values()
    )
    assert allocator.used_bytes == sum(live.values()) * BYTES_PER_TOKEN
    assert allocator.num_requests == len(live)
    assert (
        allocator.allocated_chunk_count
        <= allocator.committed_chunk_count
        <= allocator.total_chunks
    )


def snapshot(allocator: ChunkedAllocator) -> tuple:
    return (
        allocator.free_chunk_count,
        allocator.allocated_chunk_count,
        allocator.committed_chunk_count,
        allocator.used_bytes,
        allocator.num_requests,
    )


@pytest.mark.parametrize("seed", range(8))
def test_random_lifecycle_interleaving_never_leaks_chunks(seed):
    rng = random.Random(seed)
    allocator = ChunkedAllocator(
        capacity_bytes=16 * CHUNK, bytes_per_token=BYTES_PER_TOKEN, chunk_bytes=CHUNK
    )
    live: dict[int, int] = {}  # request_id -> tokens (reference model)
    preempted: dict[int, object] = {}  # request_id -> PreemptedState
    next_id = 0

    for _ in range(600):
        op = rng.choice(["reserve", "grow", "grow", "preempt", "restore", "release"])
        before = snapshot(allocator)
        if op == "reserve":
            initial = rng.randint(1, 3 * TOKENS_PER_CHUNK)
            final = (
                initial + rng.randint(0, 3 * TOKENS_PER_CHUNK)
                if rng.random() < 0.5
                else None  # incremental contract half the time
            )
            try:
                allocator.reserve(next_id, initial, final)
                live[next_id] = initial
                next_id += 1
            except CapacityExceeded:
                assert snapshot(allocator) == before  # failed op: no effect
        elif op == "grow" and live:
            victim = rng.choice(sorted(live))
            count = rng.randint(1, TOKENS_PER_CHUNK)
            try:
                allocator.grow(victim, count)
                live[victim] += count
            except CapacityExceeded:
                assert snapshot(allocator) == before
        elif op == "preempt" and live:
            victim = rng.choice(sorted(live))
            state = allocator.preempt(victim)
            assert state.tokens == live.pop(victim)
            preempted[victim] = state
        elif op == "restore" and preempted:
            request_id = rng.choice(sorted(preempted))
            state = preempted[request_id]
            try:
                allocator.restore(request_id, state)
                live[request_id] = state.tokens
                del preempted[request_id]
            except CapacityExceeded:
                assert snapshot(allocator) == before
        elif op == "release" and live:
            victim = rng.choice(sorted(live))
            allocator.release(victim)
            del live[victim]
        check_chunked_invariants(allocator, live)

    # Full drain: everything live is released, everything paged out stays
    # out; the allocator must return to pristine state.
    for request_id in sorted(live):
        allocator.release(request_id)
    check_chunked_invariants(allocator, {})
    assert allocator.free_chunk_count == allocator.total_chunks
    assert allocator.committed_chunk_count == 0
    assert allocator.host_interventions > 0  # the run actually did work


@pytest.mark.parametrize("seed", range(4))
def test_random_lifecycle_interleaving_static_books_balance(seed):
    rng = random.Random(seed)
    allocator = StaticAllocator(
        capacity_bytes=8 * CHUNK,
        max_context_tokens=2 * TOKENS_PER_CHUNK,
        bytes_per_token=BYTES_PER_TOKEN,
    )
    live: dict[int, int] = {}
    preempted: dict[int, object] = {}
    next_id = 0

    for _ in range(400):
        op = rng.choice(["reserve", "grow", "preempt", "restore", "release"])
        if op == "reserve":
            initial = rng.randint(1, TOKENS_PER_CHUNK)
            with contextlib.suppress(AllocationError):
                allocator.reserve(next_id, initial)
                live[next_id] = initial
                next_id += 1
        elif op == "grow" and live:
            victim = rng.choice(sorted(live))
            # AllocationError here means the static maximum was hit; the
            # reservation is unchanged.
            with contextlib.suppress(AllocationError):
                allocator.grow(victim)
                live[victim] += 1
        elif op == "preempt" and live:
            victim = rng.choice(sorted(live))
            preempted[victim] = allocator.preempt(victim)
            del live[victim]
        elif op == "restore" and preempted:
            request_id = rng.choice(sorted(preempted))
            with contextlib.suppress(CapacityExceeded):
                allocator.restore(request_id, preempted[request_id])
                live[request_id] = preempted.pop(request_id).tokens
        elif op == "release" and live:
            victim = rng.choice(sorted(live))
            allocator.release(victim)
            del live[victim]
        assert allocator.allocated_bytes + allocator.free_bytes == allocator.capacity_bytes
        assert allocator.allocated_bytes == len(live) * allocator.reservation_bytes
        assert allocator.used_bytes == sum(live.values()) * BYTES_PER_TOKEN

    for request_id in sorted(live):
        allocator.release(request_id)
    assert allocator.free_bytes == allocator.capacity_bytes
    assert allocator.num_requests == 0
