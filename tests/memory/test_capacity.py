"""Tests for capacity-utilisation tracking."""

import pytest

from repro.memory.capacity import CapacityTracker


class TestCapacityTracker:
    def test_average_over_meaningful_samples(self):
        tracker = CapacityTracker()
        tracker.record(0, allocated_bytes=100, used_bytes=50)
        tracker.record(1, allocated_bytes=200, used_bytes=150)
        tracker.record(2, allocated_bytes=0, used_bytes=0)
        assert tracker.average_utilization == pytest.approx((0.5 + 0.75) / 2)

    def test_peak_allocation(self):
        tracker = CapacityTracker()
        tracker.record(0, 100, 10)
        tracker.record(1, 300, 10)
        tracker.record(2, 200, 10)
        assert tracker.peak_allocated_bytes == 300

    def test_empty_tracker(self):
        tracker = CapacityTracker()
        assert tracker.average_utilization == 0.0
        assert tracker.peak_allocated_bytes == 0

    def test_negative_sample_rejected(self):
        tracker = CapacityTracker()
        with pytest.raises(ValueError):
            tracker.record(0, -1, 0)
