"""Tests for the VA2PA translation table."""

import pytest

from repro.memory.va2pa import TranslationError, VA2PATable


class TestVA2PATable:
    def test_translate_within_chunk(self):
        table = VA2PATable(chunk_bytes=1024)
        table.map(request_id=1, virtual_chunk=0, physical_chunk=5)
        assert table.translate(1, 0) == 5 * 1024
        assert table.translate(1, 100) == 5 * 1024 + 100

    def test_translate_across_chunks(self):
        table = VA2PATable(chunk_bytes=1024)
        table.map(1, 0, 5)
        table.map(1, 1, 2)
        assert table.translate(1, 1024 + 8) == 2 * 1024 + 8

    def test_per_request_isolation(self):
        # The paper's example: the same virtual address resolves to different
        # physical locations for different requests.
        table = VA2PATable(chunk_bytes=1024)
        table.map(1, 0, 22)
        table.map(2, 0, 33)
        assert table.translate(1, 0) == 22 * 1024
        assert table.translate(2, 0) == 33 * 1024

    def test_unmapped_access_raises(self):
        table = VA2PATable(chunk_bytes=1024)
        with pytest.raises(TranslationError):
            table.translate(1, 0)

    def test_remapping_conflict_rejected(self):
        table = VA2PATable(chunk_bytes=1024)
        table.map(1, 0, 5)
        with pytest.raises(ValueError):
            table.map(1, 0, 6)
        # Idempotent remap to the same chunk is allowed.
        table.map(1, 0, 5)

    def test_release_removes_only_that_request(self):
        table = VA2PATable(chunk_bytes=1024)
        table.map(1, 0, 5)
        table.map(2, 0, 7)
        freed = table.release(1)
        assert freed == [5]
        assert table.num_entries == 1
        assert table.translate(2, 0) == 7 * 1024

    def test_chunks_listed_in_virtual_order(self):
        table = VA2PATable(chunk_bytes=1024)
        table.map(1, 2, 9)
        table.map(1, 0, 4)
        table.map(1, 1, 7)
        assert table.chunks_of(1) == [4, 7, 9]

    def test_table_bytes_scales_with_entries(self):
        table = VA2PATable(chunk_bytes=1024)
        assert table.table_bytes == 0
        table.map(1, 0, 1)
        table.map(1, 1, 2)
        assert table.table_bytes == 16
