"""Tests for the static (T_max reservation) allocator."""

import pytest

from repro.memory.static_alloc import AllocationError, StaticAllocator


def make_allocator(capacity_mb: int = 64, max_tokens: int = 1024, bpt: int = 1024) -> StaticAllocator:
    return StaticAllocator(
        capacity_bytes=capacity_mb * 1024 * 1024,
        max_context_tokens=max_tokens,
        bytes_per_token=bpt,
    )


class TestAdmission:
    def test_reservation_is_worst_case(self):
        allocator = make_allocator()
        allocator.admit(0, initial_tokens=10)
        assert allocator.allocated_bytes == allocator.reservation_bytes
        assert allocator.reservation_bytes == 1024 * 1024

    def test_admission_limited_by_worst_case(self):
        # 64MB capacity / 1MB reservations -> 64 requests regardless of the
        # fact that each request only uses 10 tokens.
        allocator = make_allocator()
        admitted = 0
        while allocator.can_admit():
            allocator.admit(admitted, initial_tokens=10)
            admitted += 1
        assert admitted == 64

    def test_over_admission_raises(self):
        allocator = make_allocator(capacity_mb=1)
        allocator.admit(0, 10)
        with pytest.raises(AllocationError):
            allocator.admit(1, 10)

    def test_duplicate_admission_rejected(self):
        allocator = make_allocator()
        allocator.admit(0, 10)
        with pytest.raises(ValueError):
            allocator.admit(0, 10)

    def test_prompt_longer_than_maximum_rejected(self):
        allocator = make_allocator(max_tokens=100)
        with pytest.raises(ValueError):
            allocator.admit(0, 101)


class TestLifecycle:
    def test_release_frees_reservation(self):
        allocator = make_allocator()
        allocator.admit(0, 10)
        allocator.release(0)
        assert allocator.allocated_bytes == 0
        assert allocator.num_requests == 0

    def test_append_does_not_grow_reservation(self):
        allocator = make_allocator()
        allocator.admit(0, 10)
        before = allocator.allocated_bytes
        allocator.append_token(0, 50)
        assert allocator.allocated_bytes == before
        assert allocator.used_bytes == 60 * 1024

    def test_append_beyond_maximum_raises(self):
        allocator = make_allocator(max_tokens=100)
        allocator.admit(0, 90)
        with pytest.raises(AllocationError):
            allocator.append_token(0, 20)

    def test_append_unknown_request_raises(self):
        allocator = make_allocator()
        with pytest.raises(KeyError):
            allocator.append_token(42)


class TestUtilization:
    def test_utilization_reflects_actual_vs_reserved(self):
        allocator = make_allocator(max_tokens=1000)
        allocator.admit(0, 350)
        assert allocator.capacity_utilization == pytest.approx(0.35)

    def test_empty_allocator_utilization_zero(self):
        assert make_allocator().capacity_utilization == 0.0
