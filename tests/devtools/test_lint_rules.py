"""Tests for the ``repro-lint`` AST invariant checker.

Each rule is exercised with fixture snippets in both the firing and the
non-firing direction, suppression comments are checked at line and file
scope, and the shipped ``src/repro`` tree is asserted clean so the CI
gate (``repro-lint`` exiting 0) is pinned by the suite itself.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.api.spec import ExperimentSpec
from repro.devtools.lint import all_rules, format_json, format_text, run_lint
from repro.devtools.lint.cli import main
from repro.devtools.lint.rules.spec_roundtrip import SpecRoundTripRule

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_source(tmp_path, source, name="module.py", select=None, ignore=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([path], all_rules(), select=select, ignore=ignore, root=tmp_path)


def codes(findings):
    return sorted({finding.code for finding in findings})


class TestDeterminismRule:
    def test_flags_random_import(self, tmp_path):
        findings = lint_source(tmp_path, "import random\n")
        assert codes(findings) == ["RPR001"]
        assert "global-state RNG" in findings[0].message

    def test_flags_secrets_import(self, tmp_path):
        findings = lint_source(tmp_path, "import secrets\n")
        assert codes(findings) == ["RPR001"]

    def test_flags_wall_clock_reads(self, tmp_path):
        source = """
        import time

        def stamp():
            return time.perf_counter()
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR001"]
        assert "wall-clock" in findings[0].message

    def test_flags_wall_clock_read_through_from_import(self, tmp_path):
        source = """
        from time import monotonic

        def stamp():
            return monotonic()
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR001"]

    def test_flags_datetime_now(self, tmp_path):
        source = """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR001"]

    def test_flags_numpy_global_rng(self, tmp_path):
        source = """
        import numpy as np

        def draw(n):
            return np.random.rand(n)
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR001"]
        assert "global RNG state" in findings[0].message

    def test_flags_unseeded_default_rng(self, tmp_path):
        source = """
        import numpy as np

        def draw():
            return np.random.default_rng()
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR001"]
        assert "without a seed" in findings[0].message

    def test_flags_os_urandom_and_uuid4(self, tmp_path):
        source = """
        import os
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4()
        """
        findings = lint_source(tmp_path, source)
        assert [finding.code for finding in findings] == ["RPR001", "RPR001"]

    def test_allows_seeded_generator_flow(self, tmp_path):
        source = """
        import numpy as np
        from numpy.random import SeedSequence, default_rng

        def build(seed: int) -> np.random.Generator:
            children = SeedSequence(seed).spawn(2)
            return default_rng(children[0])
        """
        assert lint_source(tmp_path, source) == []

    def test_allows_plain_time_import_without_reads(self, tmp_path):
        source = """
        import time

        SLEEP = time.sleep
        """
        assert lint_source(tmp_path, source) == []


class TestFloatEqualityRule:
    def test_flags_suffixed_name_equality(self, tmp_path):
        source = """
        def same(arrival_s, deadline_s):
            return arrival_s == deadline_s
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR002"]
        assert "math.isclose" in findings[0].message

    def test_flags_float_literal_inequality(self, tmp_path):
        findings = lint_source(tmp_path, "DONE = 1.5\nFLAG = DONE != 1.5\n")
        assert codes(findings) == ["RPR002"]

    def test_flags_division_result_equality(self, tmp_path):
        source = """
        def ratio_is(total, parts, expected):
            return total / parts == expected
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR002"]

    def test_flags_float_cast_equality(self, tmp_path):
        source = """
        def check(x, y):
            return float(x) == y
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR002"]

    def test_flags_chained_comparison(self, tmp_path):
        source = """
        def chained(a, b_s, c):
            return a == b_s == c
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR002"]

    def test_allows_int_and_string_equality(self, tmp_path):
        source = """
        def classify(count, name):
            return count == 3 and name == "poisson"
        """
        assert lint_source(tmp_path, source) == []

    def test_allows_ordering_comparisons(self, tmp_path):
        source = """
        def late(arrival_s, deadline_s):
            return arrival_s <= deadline_s
        """
        assert lint_source(tmp_path, source) == []


class TestUnitSuffixRule:
    def test_flags_bare_quantity_assignment(self, tmp_path):
        findings = lint_source(tmp_path, "latency = 3.0\n")
        assert codes(findings) == ["RPR003"]
        assert "latency" in findings[0].message

    def test_flags_bare_function_parameter(self, tmp_path):
        source = """
        def wait(delay):
            return delay
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR003"]

    def test_flags_bare_loop_target(self, tmp_path):
        source = """
        def total(intervals):
            acc = 0.0
            for interval in intervals:
                acc += interval
            return acc
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR003"]

    def test_flags_scalar_annotated_field(self, tmp_path):
        source = """
        from dataclasses import dataclass

        @dataclass
        class Step:
            timeout: float = 0.0
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR003"]

    def test_allows_unit_suffixed_names(self, tmp_path):
        source = """
        def wait(delay_s, rate_rps):
            latency_ms = delay_s * 1000.0
            return latency_ms / max(rate_rps, 1.0)
        """
        assert lint_source(tmp_path, source) == []

    def test_allows_structured_annotation(self, tmp_path):
        source = """
        from dataclasses import dataclass

        class LatencyStats:
            pass

        @dataclass
        class Report:
            latency: LatencyStats = None
        """
        assert lint_source(tmp_path, source) == []

    def test_allows_cycles_suffix_for_time_stems(self, tmp_path):
        assert lint_source(tmp_path, "mac_latency_cycles = 4\n") == []


class TestClockDisciplineRule:
    def test_flags_clock_write_in_helper(self, tmp_path):
        source = """
        class Engine:
            def dispatch(self, when):
                self.clock = when
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR005"]
        assert "dispatch" in findings[0].message

    def test_flags_augmented_now_write(self, tmp_path):
        source = """
        class Engine:
            def helper(self, dt):
                self.now += dt
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR005"]

    def test_allows_writes_in_designated_methods(self, tmp_path):
        source = """
        class Engine:
            def __init__(self):
                self.clock = 0.0

            def reset(self):
                self.clock = 0.0

            def advance_to(self, when):
                self.clock = when

            def run(self):
                self.clock += 1.0
        """
        assert lint_source(tmp_path, source) == []

    def test_allows_bare_annotation_declaration(self, tmp_path):
        source = """
        from dataclasses import dataclass

        @dataclass
        class Snapshot:
            now: float
        """
        assert lint_source(tmp_path, source) == []


class TestSuppressions:
    def test_line_suppression_silences_named_code(self, tmp_path):
        source = """
        def same(a_s, b_s):
            return a_s == b_s  # repro-lint: disable=RPR002 -- parity pin wants exact bits
        """
        assert lint_source(tmp_path, source) == []

    def test_line_suppression_is_code_specific(self, tmp_path):
        source = """
        def same(a_s, b_s):
            return a_s == b_s  # repro-lint: disable=RPR001 -- wrong code
        """
        assert codes(lint_source(tmp_path, source)) == ["RPR002"]

    def test_disable_all_on_line(self, tmp_path):
        source = """
        def same(a_s, b_s):
            return a_s == b_s  # repro-lint: disable=all -- fixture
        """
        assert lint_source(tmp_path, source) == []

    def test_file_level_suppression(self, tmp_path):
        source = """
        # repro-lint: disable-file=RPR002 -- exact-bit parity module
        def same(a_s, b_s):
            return a_s == b_s

        def also(c_s, d_s):
            return c_s != d_s
        """
        assert lint_source(tmp_path, source) == []

    def test_malformed_suppression_reports_internal_code(self, tmp_path):
        source = """
        def same(a_s, b_s):
            return a_s == b_s  # repro-lint: disable=bogus
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR000", "RPR002"]

    def test_internal_code_is_not_suppressible(self, tmp_path):
        source = """
        # repro-lint: disable-file=all
        x = (  # repro-lint: disable=nonsense
            1
        )
        """
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR000"]

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        source = '''
        """Docs describing # repro-lint: disable=RPR002 comments."""

        def same(a_s, b_s):
            return a_s == b_s
        '''
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RPR002"]

    def test_syntax_error_reports_internal_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert codes(findings) == ["RPR000"]
        assert "syntax error" in findings[0].message


class TestSelection:
    def test_select_runs_only_named_rules(self, tmp_path):
        source = """
        import random

        latency = 3.0
        """
        findings = lint_source(tmp_path, source, select={"RPR003"})
        assert codes(findings) == ["RPR003"]

    def test_ignore_skips_named_rules(self, tmp_path):
        source = """
        import random

        latency = 3.0
        """
        findings = lint_source(tmp_path, source, ignore={"RPR003"})
        assert codes(findings) == ["RPR001"]


class TestSpecRoundTripRule:
    def test_skips_trees_without_the_spec_module(self, tmp_path):
        assert lint_source(tmp_path, "x = 1\n", select={"RPR004"}) == []

    def test_real_spec_module_passes(self):
        findings = run_lint(
            [REPO_ROOT / "src" / "repro" / "api" / "spec.py"],
            [SpecRoundTripRule()],
            root=REPO_ROOT,
        )
        assert findings == []

    def test_detects_field_dropped_from_to_dict(self, monkeypatch):
        original = ExperimentSpec.to_dict

        def dropping(self):
            data = original(self)
            data.pop("seed", None)
            return data

        monkeypatch.setattr(ExperimentSpec, "to_dict", dropping)
        findings = run_lint(
            [REPO_ROOT / "src" / "repro" / "api" / "spec.py"],
            [SpecRoundTripRule()],
            root=REPO_ROOT,
        )
        assert any(
            "ExperimentSpec.seed" in finding.message and "round-trip" in finding.message
            for finding in findings
        )

    def test_detects_preset_vocabulary_drift(self, monkeypatch):
        build_mod = __import__("repro.api.build", fromlist=["build"])
        factories = dict(build_mod._PIMPHONY_FACTORIES)
        factories["lint-phantom"] = next(iter(factories.values()))
        monkeypatch.setattr(build_mod, "_PIMPHONY_FACTORIES", factories)
        findings = run_lint(
            [REPO_ROOT / "src" / "repro" / "api" / "spec.py"],
            [SpecRoundTripRule()],
            root=REPO_ROOT,
        )
        assert any("lint-phantom" in finding.message for finding in findings)


class TestShippedTreeIsClean:
    def test_src_repro_lints_clean(self):
        findings = run_lint([REPO_ROOT / "src" / "repro"], all_rules(), root=REPO_ROOT)
        assert findings == [], format_text(findings)


class TestOutputFormats:
    def test_text_format_renders_location_and_summary(self, tmp_path):
        findings = lint_source(tmp_path, "latency = 3.0\n")
        text = format_text(findings)
        assert "module.py:1:1: RPR003 [unit-suffixes]" in text
        assert text.endswith("repro-lint: 1 finding")

    def test_json_format_is_machine_readable(self, tmp_path):
        findings = lint_source(tmp_path, "latency = 3.0\n")
        payload = json.loads(format_json(findings))
        assert payload["version"] == 1
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "RPR003"
        assert payload["findings"][0]["line"] == 1

    def test_json_format_empty(self):
        payload = json.loads(format_json([]))
        assert payload == {"version": 1, "count": 0, "findings": []}


class TestCLI:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("arrival_s = 1.0\n", encoding="utf-8")
        assert main([str(path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_with_findings(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("latency = 3.0\n", encoding="utf-8")
        assert main([str(path)]) == 1
        assert "RPR003" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("import random\n", encoding="utf-8")
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "RPR001"

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_code_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main([str(path), "--select", "RPR999"])
        assert excinfo.value.code == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert code in out
