"""Property-based tests (hypothesis) on core data structures and invariants."""

from itertools import pairwise

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dcs import DCSScheduler
from repro.core.partitioning import AttentionTask, TokenCentricPartitioner
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import AllocationError
from repro.pim.config import PIMChannelConfig
from repro.pim.isa import PIMOpcode, mac, read_output, write_input
from repro.pim.kernels import build_fc_gemv_program, build_sv_program, caps_for_policy, estimate_cycles
from repro.pim.scheduling import StaticScheduler
from repro.pim.timing import aimx_timing, illustrative_timing


# ---------------------------------------------------------------------------
# Partitioning invariants
# ---------------------------------------------------------------------------


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=16),
    num_channels=st.sampled_from([4, 8, 16, 32]),
)
@settings(max_examples=50, deadline=None)
def test_tcp_conserves_tokens_and_balances(lengths, num_channels):
    tasks = [AttentionTask(request_id=i, kv_head=0, context_length=length)
             for i, length in enumerate(lengths)]
    assignment = TokenCentricPartitioner().partition(tasks, num_channels)
    loads = assignment.tokens_per_channel()
    assert sum(loads) == sum(lengths)
    # Each task contributes at most one extra token to any channel.
    assert max(loads) - min(loads) <= len(tasks)


# ---------------------------------------------------------------------------
# Allocator invariants
# ---------------------------------------------------------------------------


@given(
    token_counts=st.lists(st.integers(min_value=1, max_value=5_000), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_chunked_allocator_never_double_books(token_counts):
    allocator = ChunkedAllocator(
        capacity_bytes=64 * 1024 * 1024, bytes_per_token=512, chunk_bytes=256 * 1024
    )
    admitted = []
    for request_id, tokens in enumerate(token_counts):
        try:
            allocator.admit(request_id, tokens)
            admitted.append(request_id)
        except AllocationError:
            break
    # No physical chunk is mapped twice across live requests.
    seen: set[int] = set()
    for request_id in admitted:
        for chunk in allocator.table.chunks_of(request_id):
            assert chunk not in seen
            seen.add(chunk)
    assert allocator.allocated_chunk_count == len(seen)
    assert 0.0 <= allocator.capacity_utilization <= 1.0
    # Releasing everything returns the allocator to its initial state.
    for request_id in admitted:
        allocator.release(request_id)
    assert allocator.allocated_chunk_count == 0
    assert allocator.free_chunk_count == allocator.total_chunks


# ---------------------------------------------------------------------------
# Scheduler invariants
# ---------------------------------------------------------------------------


def _random_gemv_stream(n_groups: int, n_inputs: int) -> list:
    """A well-formed small GEMV-like stream: writes, accumulate groups, drains."""
    commands = []
    cmd_id = 0
    for entry in range(n_inputs):
        commands.append(write_input(cmd_id, entry))
        cmd_id += 1
    for group in range(n_groups):
        out_entry = group % 4
        for entry in range(n_inputs):
            commands.append(mac(cmd_id, entry, out_entry, row=group // 4))
            cmd_id += 1
        commands.append(read_output(cmd_id, out_entry))
        cmd_id += 1
    return commands


@given(
    n_groups=st.integers(min_value=1, max_value=6),
    n_inputs=st.integers(min_value=1, max_value=8),
    timing=st.sampled_from(["fig7", "aimx"]),
)
@settings(max_examples=40, deadline=None)
def test_dcs_never_slower_than_static_and_respects_dependencies(n_groups, n_inputs, timing):
    timing_obj = illustrative_timing() if timing == "fig7" else aimx_timing()
    channel = PIMChannelConfig()
    commands = _random_gemv_stream(n_groups, n_inputs)
    static = StaticScheduler(timing_obj, channel).schedule(commands)
    dcs = DCSScheduler(timing_obj, channel).schedule(commands)
    assert dcs.makespan <= static.makespan
    # True dependencies: a MAC never starts before the write of its entry
    # completes, a drain never starts before its last producing MAC completes.
    times = {entry.command.cmd_id: entry for entry in dcs.scheduled}
    last_write: dict[int, int] = {}
    last_mac: dict[int, int] = {}
    for command in commands:
        if command.opcode is PIMOpcode.WR_INP:
            last_write[command.gbuf_idx] = command.cmd_id
        elif command.opcode is PIMOpcode.MAC:
            writer = last_write.get(command.gbuf_idx)
            if writer is not None:
                assert times[command.cmd_id].issue >= times[writer].complete
            last_mac[command.out_idx] = command.cmd_id
        else:
            producer = last_mac.get(command.out_idx)
            if producer is not None:
                assert times[command.cmd_id].issue >= times[producer].complete


# ---------------------------------------------------------------------------
# Kernel estimator invariants
# ---------------------------------------------------------------------------


@given(
    in_dim=st.integers(min_value=16, max_value=4096),
    out_dim=st.integers(min_value=16, max_value=4096),
)
@settings(max_examples=40, deadline=None)
def test_fc_program_counts_are_consistent(in_dim, out_dim):
    channel = PIMChannelConfig()
    caps = caps_for_policy(channel, "dcs")
    program = build_fc_gemv_program(in_dim, out_dim, channel, caps)
    n_in = -(-in_dim // 16)
    n_og = -(-out_dim // channel.num_banks)
    assert program.n_mac == n_in * n_og
    assert program.n_wr_inp >= n_in
    assert program.n_rd_out >= n_og
    assert program.row_activations >= 1


@given(
    tokens=st.integers(min_value=16, max_value=200_000),
    group=st.sampled_from([1, 2, 4, 8]),
    policy=st.sampled_from(["static", "pingpong", "dcs"]),
)
@settings(max_examples=40, deadline=None)
def test_cycle_breakdown_components_bound_total(tokens, group, policy):
    """Components account for the total: exactly when execution is serial
    (static scheduling has no overlap), and as an upper bound once pingpong
    or DCS overlap transfers with MACs."""
    channel = PIMChannelConfig()
    timing = aimx_timing()
    caps = caps_for_policy(channel, policy)
    program = build_sv_program(tokens, 128, channel, caps, group_size=group)
    breakdown = estimate_cycles(program, timing, policy)
    components = (
        breakdown.mac
        + breakdown.dt_gbuf
        + breakdown.dt_outreg
        + breakdown.act_pre
        + breakdown.refresh
        + breakdown.pipeline_penalty
    )
    for value in (
        breakdown.mac,
        breakdown.dt_gbuf,
        breakdown.dt_outreg,
        breakdown.act_pre,
        breakdown.refresh,
        breakdown.pipeline_penalty,
    ):
        assert value >= 0.0
    assert breakdown.io == breakdown.dt_gbuf + breakdown.dt_outreg
    if policy == "static":
        assert components == pytest.approx(breakdown.total, rel=1e-9)
    else:
        assert breakdown.total <= components * (1 + 1e-9)


@given(
    tokens=st.integers(min_value=16, max_value=50_000),
    alpha=st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
    beta=st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_cycle_breakdown_scaled_is_linear(tokens, alpha, beta):
    """scaled() is linear: scaled(a) + scaled(b) == scaled(a + b), and
    addition is componentwise."""
    channel = PIMChannelConfig()
    timing = aimx_timing()
    caps = caps_for_policy(channel, "dcs")
    program = build_sv_program(tokens, 128, channel, caps, group_size=2)
    breakdown = estimate_cycles(program, timing, "dcs")
    split = breakdown.scaled(alpha) + breakdown.scaled(beta)
    joint = breakdown.scaled(alpha + beta)
    for attribute in ("mac", "dt_gbuf", "dt_outreg", "act_pre", "refresh",
                      "pipeline_penalty", "total"):
        assert getattr(split, attribute) == pytest.approx(
            getattr(joint, attribute), rel=1e-9, abs=1e-9
        )
    identity = breakdown.scaled(1.0)
    assert identity.total == pytest.approx(breakdown.total)


@given(
    n_groups=st.integers(min_value=1, max_value=6),
    n_inputs=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(["static", "dcs"]),
)
@settings(max_examples=40, deadline=None)
def test_schedule_issue_order_is_a_monotone_permutation(n_groups, n_inputs, policy):
    """issue_order() returns every command exactly once, in non-decreasing
    issue time with ties broken by program order (cmd_id)."""
    timing_obj = aimx_timing()
    channel = PIMChannelConfig()
    commands = _random_gemv_stream(n_groups, n_inputs)
    scheduler = (
        StaticScheduler(timing_obj, channel)
        if policy == "static"
        else DCSScheduler(timing_obj, channel)
    )
    result = scheduler.schedule(commands)
    order = result.issue_order()
    assert sorted(order) == sorted(command.cmd_id for command in commands)
    issue_of = {entry.command.cmd_id: entry.issue for entry in result.scheduled}
    for earlier, later in pairwise(order):
        assert issue_of[earlier] <= issue_of[later]
        if issue_of[earlier] == issue_of[later]:
            assert earlier < later
    # Every scheduled command occupies a non-negative interval within the
    # makespan.
    for entry in result.scheduled:
        assert 0 <= entry.issue <= entry.complete <= result.makespan


@given(
    tokens=st.integers(min_value=16, max_value=200_000),
    group=st.sampled_from([1, 2, 4, 8]),
    policy=st.sampled_from(["static", "pingpong", "dcs"]),
)
@settings(max_examples=40, deadline=None)
def test_estimates_are_positive_and_policy_ordered(tokens, group, policy):
    channel = PIMChannelConfig()
    timing = aimx_timing()
    caps = caps_for_policy(channel, policy)
    program = build_sv_program(tokens, 128, channel, caps, group_size=group)
    breakdown = estimate_cycles(program, timing, policy)
    assert breakdown.total > 0
    assert 0.0 <= breakdown.mac_utilization <= 1.0
    dcs = estimate_cycles(
        build_sv_program(tokens, 128, channel, caps_for_policy(channel, "dcs"), group_size=group),
        timing,
        "dcs",
    )
    assert dcs.total <= breakdown.total * 1.001
