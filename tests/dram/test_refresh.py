"""Tests for the rate-based refresh model."""

import pytest

from repro.dram.refresh import RefreshModel
from repro.dram.timing import DRAMTiming


class TestRefreshModel:
    def test_overhead_matches_duty_cycle(self):
        timing = DRAMTiming(t_rfc=100, t_refi=1000)
        model = RefreshModel(timing)
        # 10% of time is refresh, so overhead per busy cycle is 1/9.
        assert model.overhead_fraction == pytest.approx(1 / 9)
        assert model.with_refresh(900) == pytest.approx(1000)

    def test_zero_work_zero_refresh(self):
        model = RefreshModel(DRAMTiming())
        assert model.refresh_cycles(0) == 0.0

    def test_negative_work_rejected(self):
        model = RefreshModel(DRAMTiming())
        with pytest.raises(ValueError):
            model.refresh_cycles(-1)
