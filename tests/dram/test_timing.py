"""Tests for DRAM timing parameters."""

import pytest

from repro.dram.timing import DRAMTiming


class TestDRAMTiming:
    def test_defaults_are_consistent(self):
        timing = DRAMTiming()
        assert timing.row_switch_cycles == timing.t_rp + timing.t_rcd
        assert 0 < timing.refresh_fraction < 0.2
        assert timing.tiles_per_row == timing.row_bytes // 32

    def test_cycle_second_round_trip(self):
        timing = DRAMTiming(clock_ghz=2.0)
        seconds = timing.cycles_to_seconds(2000)
        assert seconds == pytest.approx(1e-6)
        assert timing.seconds_to_cycles(seconds) == pytest.approx(2000)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DRAMTiming(clock_ghz=0)
        with pytest.raises(ValueError):
            DRAMTiming(t_rcd=0)
        with pytest.raises(ValueError):
            DRAMTiming(t_rfc=5000, t_refi=100)
