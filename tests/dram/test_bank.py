"""Tests for the per-bank row-buffer state machine."""

import pytest

from repro.dram.bank import BankState
from repro.dram.timing import DRAMTiming


class TestBankState:
    def test_first_access_pays_only_activate(self):
        timing = DRAMTiming()
        bank = BankState(timing)
        assert bank.access(3) == timing.t_rcd
        assert bank.open_row == 3
        assert bank.activations == 1

    def test_row_hit_is_free(self):
        bank = BankState(DRAMTiming())
        bank.access(1)
        assert bank.access(1) == 0
        assert bank.row_hits == 1

    def test_row_miss_pays_precharge_and_activate(self):
        timing = DRAMTiming()
        bank = BankState(timing)
        bank.access(1)
        assert bank.access(2) == timing.row_switch_cycles
        assert bank.open_row == 2

    def test_precharge_closes_row(self):
        timing = DRAMTiming()
        bank = BankState(timing)
        bank.access(1)
        assert bank.precharge() == timing.t_rp
        assert bank.open_row is None
        assert bank.precharge() == 0

    def test_hit_rate_tracking(self):
        bank = BankState(DRAMTiming())
        assert bank.row_hit_rate == 0.0
        bank.access(0)
        bank.access(0)
        bank.access(1)
        assert bank.row_hit_rate == pytest.approx(1 / 3)

    def test_negative_row_rejected(self):
        bank = BankState(DRAMTiming())
        with pytest.raises(ValueError):
            bank.access(-1)
