"""Tests for report formatting helpers."""

from repro.analysis.reporting import format_table, speedup_table
from repro.analysis.utilization import mac_utilization_sweep
from repro.pim.config import PIMChannelConfig
from repro.pim.timing import aimx_timing


class TestFormatting:
    def test_table_alignment_and_title(self):
        table = format_table(
            ["name", "value"], [["alpha", 1.23456], ["b", 2]], title="Example"
        )
        lines = table.splitlines()
        assert lines[0] == "Example"
        assert "alpha" in lines[3]
        assert "1.23" in table

    def test_speedup_table_computes_ratio(self):
        table = speedup_table({"qmsum": 100.0}, {"qmsum": 250.0})
        assert "2.5" in table

    def test_speedup_with_missing_key(self):
        table = speedup_table({"a": 10.0}, {})
        assert "0" in table


class TestUtilizationSweep:
    def test_sweep_returns_one_entry_per_dimension(self):
        results = mac_utilization_sweep(
            [128, 512], PIMChannelConfig(), aimx_timing(), policy="static"
        )
        assert set(results) == {128, 512}
        assert all(0 <= value <= 1 for value in results.values())
