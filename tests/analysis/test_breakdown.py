"""Tests for breakdown post-processing."""

import pytest

from repro.analysis.breakdown import BREAKDOWN_COMPONENTS, breakdown_fractions, normalize_breakdown
from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN


def sample() -> CycleBreakdown:
    return CycleBreakdown(
        mac=40, dt_gbuf=20, dt_outreg=10, act_pre=10, refresh=10, pipeline_penalty=10, total=100
    )


class TestBreakdownAnalysis:
    def test_fractions_sum_to_one_for_serial_breakdowns(self):
        fractions = breakdown_fractions(sample())
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["mac"] == pytest.approx(0.4)

    def test_zero_breakdown_fractions(self):
        fractions = breakdown_fractions(ZERO_BREAKDOWN)
        assert all(value == 0.0 for value in fractions.values())
        assert set(fractions) == set(BREAKDOWN_COMPONENTS)

    def test_normalisation_against_reference(self):
        normalized = normalize_breakdown(sample(), reference_total=200)
        assert normalized["mac"] == pytest.approx(0.2)

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize_breakdown(sample(), reference_total=0)
