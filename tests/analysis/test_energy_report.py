"""Tests for serving-level energy accounting (paper Fig. 16)."""

from repro.analysis.energy_report import serving_energy
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.pim.energy import EnergyModel
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


def run(model, config):
    trace = generate_trace(
        get_dataset("qmsum"), 6, seed=0, context_window=model.context_window, output_tokens=8
    )
    system = cent_system_config(model, pimphony=config)
    return simulate_serving(system, trace, step_stride=4), system


class TestServingEnergy:
    def test_baseline_attention_is_background_dominated(self, llm_7b):
        """The Fig. 16 observation: ~70% of baseline attention energy is
        runtime-proportional background power."""
        result, system = run(llm_7b, PIMphonyConfig.baseline())
        energy = serving_energy(result, system.module.timing, EnergyModel())
        assert energy["attention"].fraction("background") > 0.5

    def test_pimphony_reduces_attention_energy_and_background_share(self, llm_7b):
        baseline_result, baseline_system = run(llm_7b, PIMphonyConfig.baseline())
        pimphony_result, pimphony_system = run(llm_7b, PIMphonyConfig.full())
        model = EnergyModel()
        baseline_energy = serving_energy(baseline_result, baseline_system.module.timing, model)
        pimphony_energy = serving_energy(pimphony_result, pimphony_system.module.timing, model)
        assert pimphony_energy["attention"].total < baseline_energy["attention"].total
        assert (
            pimphony_energy["attention"].fraction("background")
            < baseline_energy["attention"].fraction("background")
        )

    def test_fc_energy_reported_separately(self, llm_7b):
        result, system = run(llm_7b, PIMphonyConfig.full())
        energy = serving_energy(result, system.module.timing)
        assert energy["fc"].total > 0
