"""EWMA feedback tests: measured TPOT sharpens dispatch across runs."""

from dataclasses import dataclass

import pytest

from repro.serving import (
    LeastOutstandingRouting,
    ReplicaRouter,
    ServingEngine,
)
from repro.serving.interfaces import StepResult
from repro.workloads.traces import Request, RequestTrace


@dataclass
class BatchSlowSystem:
    """Fast when probed (batch of one), slow while actually serving load.

    The router's dispatch-time probe prices a single-request decode step,
    which this system answers quickly regardless of ``slow_factor`` --
    exactly the blind spot the EWMA feedback loop exists to close: only
    *measured* TPOT from a real run reveals the slowdown.
    """

    slow_factor: float = 1.0
    kv_capacity_bytes: int = 1_000_000
    kv_bytes_per_token: int = 1
    max_context_tokens: int = 4096
    base_step_s: float = 0.01

    @property
    def dynamic_memory(self) -> bool:
        return False

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths) -> StepResult:
        if not context_lengths:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        if len(context_lengths) <= 1:
            return StepResult(seconds=self.base_step_s, pim_utilization=0.0)
        return StepResult(seconds=self.base_step_s * self.slow_factor, pim_utilization=0.0)


def heterogeneous_router(ewma_alpha=0.5):
    fast = ServingEngine(system=BatchSlowSystem(slow_factor=1.0))
    slow = ServingEngine(system=BatchSlowSystem(slow_factor=5.0))
    return ReplicaRouter(
        replicas=(fast, slow),
        policy=LeastOutstandingRouting(),
        ewma_alpha=ewma_alpha,
    )


def burst_trace(num_requests=10, output=8):
    return RequestTrace(
        dataset="burst",
        requests=tuple(
            Request(
                request_id=index,
                prompt_tokens=64,
                output_tokens=output,
                arrival_s=index * 1e-6,  # tight burst: nothing drains between picks
            )
            for index in range(num_requests)
        ),
    )


class TestEWMAFeedback:
    def test_feedback_sharpens_placement_on_heterogeneous_fleet(self):
        router = heterogeneous_router()
        trace = burst_trace()

        # First dispatch: the probe sees two equally fast replicas, so
        # least-outstanding splits the burst evenly.
        first = router.dispatch(trace)
        assert first.count(0) == first.count(1) == 5

        # Serving the trace measures the truth: replica 1 is 5x slower
        # under load.  The EWMA folds that into the estimates...
        router.run(trace)
        estimates = router.service_time_estimates
        assert estimates[1] > estimates[0] > 0.0

        # ...so the next dispatch leans on the fast replica.
        second = router.dispatch(trace)
        assert second.count(0) > first.count(0)
        assert second.count(1) < first.count(1)

    def test_estimates_converge_over_repeated_runs(self):
        router = heterogeneous_router(ewma_alpha=0.5)
        trace = burst_trace()
        imbalances = []
        for _ in range(3):
            fleet = router.run(trace)
            imbalances.append(fleet.load_imbalance)
        # Feedback strictly reduces the busy-time imbalance of the first,
        # evenly split run.
        assert imbalances[-1] < imbalances[0]

    def test_zero_alpha_disables_feedback(self):
        router = heterogeneous_router(ewma_alpha=0.0)
        trace = burst_trace()
        first = router.dispatch(trace)
        router.run(trace)
        assert router.service_time_estimates == {}
        assert router.dispatch(trace) == first

    def test_homogeneous_fleet_unaffected_by_feedback(self):
        def engine():
            return ServingEngine(system=BatchSlowSystem(slow_factor=2.0))

        router = ReplicaRouter.homogeneous(
            engine, 2, policy=LeastOutstandingRouting(), ewma_alpha=0.5
        )
        trace = burst_trace()
        first = router.dispatch(trace)
        router.run(trace)
        # Both replicas measure the same TPOT: placement stays balanced.
        assert router.dispatch(trace) == first

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_router(ewma_alpha=1.5)
        with pytest.raises(ValueError):
            heterogeneous_router(ewma_alpha=-0.1)

    def test_single_token_requests_still_learn_estimates(self):
        # Regression: requests with output_tokens == 1 report TPOT 0 (no
        # inter-token gap), which used to skip the EWMA update entirely --
        # a fleet serving only single-token requests never learned and
        # stale estimates persisted forever.  The fallback folds the
        # measured mean decode-step latency instead.
        router = heterogeneous_router(ewma_alpha=0.5)
        trace = burst_trace(output=1)
        router.run(trace)
        estimates = router.service_time_estimates
        assert estimates, "single-token fleet must still learn step estimates"
        assert all(value > 0.0 for value in estimates.values())
        # The slow replica's measured step latency dominates its estimate.
        assert estimates[1] > estimates[0]

    def test_fallback_excludes_chunked_prefill_from_step_estimate(self):
        # Regression: the fallback once divided *busy* seconds by decode
        # steps, but busy time includes chunked-prefill work -- on a
        # prompt-heavy single-token trace that inflated the learned
        # estimate by orders of magnitude and inverted dispatch.
        from repro.serving import LinearPrefillModel, PrefillConfig

        base_step = BatchSlowSystem().base_step_s
        engine = ServingEngine(
            system=BatchSlowSystem(),
            prefill=PrefillConfig(
                model=LinearPrefillModel(per_token_s=0.01), chunk_tokens=64
            ),
        )
        router = ReplicaRouter(replicas=(engine,), ewma_alpha=0.5)
        trace = RequestTrace(
            dataset="prompt-heavy",
            requests=tuple(
                Request(
                    request_id=index, prompt_tokens=1024, output_tokens=1,
                    arrival_s=index * 60.0,
                )
                for index in range(3)
            ),
        )
        router.run(trace)
        estimate = router.service_time_estimates[0]
        # Each prompt costs ~10.24s of prefill vs a 0.01s decode step; a
        # busy-time estimate would land near 10s.
        assert 0.0 < estimate <= 2 * base_step

    def test_empty_replica_keeps_no_estimate(self):
        # A replica that served nothing has no measurement to fold in.
        router = heterogeneous_router(ewma_alpha=0.5)
        trace = RequestTrace(
            dataset="single",
            requests=(Request(request_id=0, prompt_tokens=8, output_tokens=1),),
        )
        router.run(trace)
        assert set(router.service_time_estimates) == {0}

    def test_ewma_blends_successive_measurements(self):
        router = heterogeneous_router(ewma_alpha=0.5)
        trace = burst_trace()
        router.run(trace)
        after_first = router.service_time_estimates
        router.run(trace)
        after_second = router.service_time_estimates
        # The second run shifts load, so measured TPOTs move and the EWMA
        # blends rather than overwrites.
        for index in after_first:
            assert after_second[index] > 0.0
