"""Tests for the bucketed decode-step latency cache."""

import pytest

from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.serving import StepLatencyCache, serve
from repro.serving.interfaces import StepResult
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


class CountingSystem:
    """Constant-latency DecodeSystem that records evaluations."""

    kv_capacity_bytes = 1 << 40
    kv_bytes_per_token = 512
    max_context_tokens = 1 << 20
    dynamic_memory = True
    total_pim_channels = 0

    def __init__(self):
        self.calls = 0
        self.seen: list[list[int]] = []

    def decode_step(self, context_lengths):
        self.calls += 1
        self.seen.append(list(context_lengths))
        return StepResult(seconds=1e-3 * len(context_lengths), pim_utilization=0.5)


def make_trace(model, requests=8, output=16, seed=0):
    return generate_trace(
        get_dataset("qmsum"),
        num_requests=requests,
        seed=seed,
        context_window=model.context_window,
        output_tokens=output,
    )


class TestStepLatencyCache:
    def test_memoises_identical_batches(self):
        system = CountingSystem()
        cache = StepLatencyCache(bucket_tokens=1)
        first = cache.evaluate(system, [100, 200])
        second = cache.evaluate(system, [100, 200])
        assert system.calls == 1
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_key_is_order_invariant(self):
        system = CountingSystem()
        cache = StepLatencyCache(bucket_tokens=1)
        cache.evaluate(system, [100, 200])
        cache.evaluate(system, [200, 100])
        assert system.calls == 1

    def test_bucketing_collapses_nearby_contexts(self):
        system = CountingSystem()
        cache = StepLatencyCache(bucket_tokens=256)
        cache.evaluate(system, [1000])
        cache.evaluate(system, [1020])  # same 256-token bucket
        cache.evaluate(system, [5000])  # different bucket
        assert system.calls == 2
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction_bounds_size(self):
        system = CountingSystem()
        cache = StepLatencyCache(bucket_tokens=1, max_entries=2)
        cache.evaluate(system, [1])
        cache.evaluate(system, [2])
        cache.evaluate(system, [3])
        assert len(cache) == 2
        cache.evaluate(system, [1])  # evicted above, must re-evaluate
        assert system.calls == 4

    def test_misses_evaluate_at_actual_contexts(self):
        # Misses are priced at the real triggering batch, never at synthetic
        # bucket midpoints (which would misprice sub-bucket contexts and can
        # exceed the model window in the top bucket).
        system = CountingSystem()
        cache = StepLatencyCache(bucket_tokens=256)
        cache.evaluate(system, [10, 64])
        assert system.seen == [[10, 64]]

    def test_cache_rejects_a_second_system(self):
        fast, slow = CountingSystem(), CountingSystem()
        cache = StepLatencyCache(bucket_tokens=1)
        cache.evaluate(fast, [100])
        with pytest.raises(ValueError):
            cache.evaluate(slow, [100])
        cache.clear()
        cache.evaluate(slow, [100])  # rebinding after clear() is fine
        assert slow.calls == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StepLatencyCache(bucket_tokens=0)
        with pytest.raises(ValueError):
            StepLatencyCache(max_entries=0)


class TestCachedServing:
    def test_exact_cache_is_bit_identical(self, llm_7b):
        trace = make_trace(llm_7b, requests=6, output=16)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        uncached = serve(system, trace, step_stride=4)
        cached = serve(
            system, trace, step_stride=4, latency_cache=StepLatencyCache(bucket_tokens=1)
        )
        assert cached.total_seconds == uncached.total_seconds
        assert cached.throughput_tokens_per_s == uncached.throughput_tokens_per_s

    def test_bucketed_cache_within_tolerance_and_faster(self, llm_7b):
        trace = make_trace(llm_7b, requests=10, output=32)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        cache = StepLatencyCache(bucket_tokens=256)
        uncached = serve(system, trace, step_stride=4)
        cached = serve(system, trace, step_stride=4, latency_cache=cache)
        assert cached.throughput_tokens_per_s == pytest.approx(
            uncached.throughput_tokens_per_s, rel=0.02
        )
        assert cache.hits > cache.misses  # the sweep mostly reuses entries
        assert cached.metadata["latency_cache"]["hit_rate"] == cache.hit_rate

    def test_cache_reusable_across_runs(self, llm_7b):
        trace = make_trace(llm_7b, requests=4, output=8)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        cache = StepLatencyCache(bucket_tokens=256)
        first = serve(system, trace, step_stride=2, latency_cache=cache)
        misses_first = cache.misses
        second = serve(system, trace, step_stride=2, latency_cache=cache)
        # A second identical run is served entirely from the cache, and each
        # result reports its own per-run statistics, not lifetime counters.
        assert cache.misses == misses_first
        assert first.metadata["latency_cache"]["misses"] == misses_first
        assert second.metadata["latency_cache"]["misses"] == 0
        assert second.metadata["latency_cache"]["hit_rate"] == 1.0
