"""Edge-case and lifecycle tests for the event-driven serving engine."""

import pytest

from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.memory.static_alloc import AllocationError
from repro.serving import (
    CapacityAwareAdmission,
    FCFSAdmission,
    PriorityAdmission,
    ServingEngine,
    serve,
)
from repro.workloads.datasets import get_dataset, synthetic_dataset
from repro.workloads.traces import generate_trace, poisson_arrivals, replay_arrivals


def make_trace(model, requests=8, output=16, dataset="qmsum", seed=0):
    return generate_trace(
        get_dataset(dataset),
        num_requests=requests,
        seed=seed,
        context_window=model.context_window,
        output_tokens=output,
    )


class TestEngineEdgeCases:
    def test_oversized_request_raises_allocation_error(self, llm_7b):
        huge = synthetic_dataset(
            "huge", mean=5e6, std=1.0, minimum=4_000_000, maximum=6_000_000, output_tokens=4
        )
        trace = generate_trace(huge, num_requests=1, seed=0)
        system = cent_system_config(
            llm_7b.with_context_window(8 * 1024 * 1024),
            num_modules=1,
            pimphony=PIMphonyConfig.full(),
        )
        with pytest.raises(AllocationError):
            serve(system, trace)

    def test_skip_policy_drops_unservable_requests_instead_of_raising(self, llm_7b):
        # One request exceeds total KV capacity; the others are normal.
        # A skip-over policy must finish the run and report the drop,
        # instead of discarding every served request's results at drain.
        from dataclasses import replace

        from repro.workloads.traces import RequestTrace

        base = make_trace(llm_7b, requests=5, output=8)
        system = cent_system_config(
            llm_7b.with_context_window(8 * 1024 * 1024),
            pimphony=PIMphonyConfig.full(),
        )
        oversized = replace(
            base.requests[0], request_id=99, prompt_tokens=5_000_000, output_tokens=4
        )
        trace = RequestTrace(dataset=base.dataset, requests=base.requests + (oversized,))
        result = serve(
            system, trace, admission=CapacityAwareAdmission(), step_stride=2
        )
        assert result.requests_dropped == 1
        assert result.metadata["dropped_request_ids"] == [99]
        assert result.requests_served == 5
        assert result.total_output_tokens == sum(r.output_tokens for r in base.requests)
        # Head-of-line FCFS keeps the legacy error behaviour.
        with pytest.raises(AllocationError):
            serve(system, trace, admission=FCFSAdmission(), step_stride=2)

    def test_max_batch_size_caps_concurrency(self, llm_7b):
        trace = make_trace(llm_7b, requests=8, output=8)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, trace, max_batch_size=2, step_stride=4)
        assert result.peak_batch_size <= 2
        assert result.total_output_tokens == trace.total_output_tokens

    def test_step_stride_matches_stride_one_within_tolerance(self, llm_7b):
        trace = make_trace(llm_7b, requests=4, output=32)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        fine = serve(system, trace, step_stride=1)
        coarse = serve(system, trace, step_stride=16)
        assert fine.total_output_tokens == coarse.total_output_tokens
        assert coarse.throughput_tokens_per_s == pytest.approx(
            fine.throughput_tokens_per_s, rel=0.05
        )

    def test_output_longer_than_window_is_clamped_not_crashed(self, llm_7b):
        # output_tokens >= context window: the context must stop growing at
        # the window (the allocator's reservation), not run past it and die
        # mid-decode.
        from repro.workloads.traces import Request, RequestTrace

        window = llm_7b.context_window
        trace = RequestTrace(
            dataset="degenerate",
            requests=(
                Request(request_id=0, prompt_tokens=100, output_tokens=window),
                Request(request_id=1, prompt_tokens=2048, output_tokens=64),
            ),
        )
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, trace, step_stride=8)
        assert result.requests_served == 2
        records = {record.request_id: record for record in result.request_records}
        # Request 0 decodes window - 1 tokens (prompt clamped to 1).
        assert records[0].generated == window - 1
        assert records[1].generated == 64

    def test_invalid_parameters_rejected(self, llm_7b):
        system = cent_system_config(llm_7b)
        with pytest.raises(ValueError):
            ServingEngine(system=system, step_stride=0)
        with pytest.raises(ValueError):
            ServingEngine(system=system, max_batch_size=0)


class TestLifecycleMetrics:
    def test_ttft_tpot_and_percentiles_reported(self, llm_7b):
        trace = make_trace(llm_7b, requests=8, output=16)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, trace, step_stride=4)
        stats = result.latency
        assert stats.ttft_mean_s > 0
        assert stats.tpot_mean_s > 0
        assert 0 < stats.latency_p50_s <= stats.latency_p95_s <= stats.latency_p99_s
        # TTFT for the first admitted batch is one decode step; every
        # end-to-end latency is bounded by the run's makespan.
        assert stats.latency_p99_s <= result.makespan_s + 1e-12
        assert result.ttft_mean_s == stats.ttft_mean_s

    def test_single_token_requests_have_zero_tpot(self, llm_7b):
        trace = make_trace(llm_7b, requests=3, output=1)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, trace)
        assert result.latency.tpot_mean_s == 0.0
        assert result.latency.ttft_mean_s > 0

    def test_queue_delay_zero_when_uncontended(self, llm_7b):
        trace = make_trace(llm_7b, requests=2, output=4)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, trace)
        assert result.latency.queue_delay_mean_s == pytest.approx(0.0, abs=1e-12)


class TestArrivalProcesses:
    def test_poisson_arrivals_introduce_idle_time(self, llm_7b):
        trace = make_trace(llm_7b, requests=6, output=4)
        # Arrivals far slower than the service rate: the system drains
        # between requests, so the makespan exceeds busy time.
        slow = poisson_arrivals(trace, rate_rps=0.01, seed=1)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, slow, step_stride=2)
        assert result.idle_seconds > 0
        assert result.makespan_s == pytest.approx(
            result.total_seconds + result.idle_seconds, rel=1e-9
        )
        assert result.makespan_s >= slow.last_arrival_s

    def test_zero_arrivals_have_no_idle_time(self, llm_7b):
        trace = make_trace(llm_7b, requests=6, output=4)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, trace, step_stride=2)
        assert result.idle_seconds == 0.0
        assert result.makespan_s == pytest.approx(result.total_seconds)

    def test_replay_arrivals_respected(self, llm_7b):
        trace = make_trace(llm_7b, requests=3, output=4)
        replayed = replay_arrivals(trace, [0.0, 100.0, 200.0])
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = serve(system, replayed, step_stride=2)
        assert result.makespan_s > 200.0
        assert result.requests_served == 3

    def test_arrival_order_overrides_trace_order(self, llm_7b):
        trace = make_trace(llm_7b, requests=3, output=4)
        # Request 2 arrives first; under FCFS it must be admitted first.
        replayed = replay_arrivals(trace, [50.0, 60.0, 0.0], monotonic=False)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        engine = ServingEngine(system=system, admission=FCFSAdmission(), step_stride=2)
        result = engine.run(replayed)
        records = {record.request_id: record for record in result.request_records}
        assert result.requests_served == 3
        assert records[2].admitted_s == pytest.approx(0.0)
        assert records[2].admitted_s < records[0].admitted_s < records[1].admitted_s
        for record in records.values():
            assert record.finished
            assert record.admitted_s >= record.arrival_s


class TestAdmissionPoliciesInEngine:
    def test_capacity_aware_beats_fcfs_batch_under_blocking(self, llm_7b):
        # A head-of-line blocker: one near-window request followed by many
        # small ones.  FCFS stalls behind it; capacity-aware packs around it.
        window = llm_7b.context_window
        mixed = synthetic_dataset(
            "mixed", mean=window * 0.6, std=window * 0.4,
            minimum=1024, maximum=window - 64, output_tokens=8,
        )
        trace = generate_trace(mixed, num_requests=24, seed=3, context_window=window)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.tcp_dcs())
        fcfs = serve(system, trace, step_stride=4)
        packed = serve(
            system, trace, admission=CapacityAwareAdmission(), step_stride=4
        )
        assert packed.average_batch_size >= fcfs.average_batch_size
        assert packed.total_output_tokens == fcfs.total_output_tokens
        assert packed.admission_policy == "capacity-aware"

    def test_priority_admission_serves_urgent_first(self, llm_7b):
        from dataclasses import replace

        trace = make_trace(llm_7b, requests=6, output=8)
        prioritised = trace.requests[:5] + (replace(trace.requests[5], priority=10),)
        from repro.workloads.traces import RequestTrace

        trace = RequestTrace(dataset=trace.dataset, requests=prioritised)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        engine = ServingEngine(
            system=system, admission=PriorityAdmission(), max_batch_size=2, step_stride=2
        )
        result = engine.run(trace)
        assert result.admission_policy == "priority"
        assert result.requests_served == 6
        # With a batch cap of 2, the priority-10 request must be admitted in
        # the first round despite being last in arrival order.
        assert result.peak_batch_size <= 2
