"""Old-vs-new engine parity: the refactor must not move any number.

``_legacy_simulate_serving`` below is a faithful copy of the monolithic
pre-refactor decode loop (isinstance-based admission, engine-side chunk
commitment bookkeeping).  The event-driven :class:`ServingEngine` must
reproduce its throughput, step count and utilisation metrics bit-for-bit
(1e-9) on the same trace for every allocator mode and system model.
"""

from collections import deque
from dataclasses import dataclass

import pytest

from repro.baselines.cent import cent_system_config
from repro.baselines.gpu import GPUSystemModel
from repro.core.orchestrator import PIMphonyConfig
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import AllocationError, StaticAllocator
from repro.pim.simulator import ZERO_BREAKDOWN
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


@dataclass
class _ActiveRequest:
    request_id: int
    context: int
    remaining: int


def _legacy_simulate_serving(system, trace, max_batch_size=None, step_stride=1):
    """The seed repository's serving loop, kept verbatim as a reference."""
    if step_stride < 1:
        raise ValueError("step_stride must be >= 1")
    if system.dynamic_memory:
        allocator = ChunkedAllocator(
            capacity_bytes=system.kv_capacity_bytes,
            bytes_per_token=system.kv_bytes_per_token,
        )
    else:
        allocator = StaticAllocator(
            capacity_bytes=system.kv_capacity_bytes,
            max_context_tokens=system.max_context_tokens,
            bytes_per_token=system.kv_bytes_per_token,
        )
    pending = deque(trace.requests)
    active = {}
    committed_chunks = 0
    chunk_commitment = {}

    total_seconds = 0.0
    total_tokens = 0
    steps = 0
    batch_samples = []
    utilization_samples = []
    capacity_samples = []
    attention_total = ZERO_BREAKDOWN
    fc_total = ZERO_BREAKDOWN
    peak_batch = 0
    served = 0

    while pending or active:
        while pending:
            if max_batch_size is not None and len(active) >= max_batch_size:
                break
            request = pending[0]
            final_context = min(
                request.prompt_tokens + request.output_tokens, system.max_context_tokens
            )
            prompt = max(1, final_context - request.output_tokens)
            if isinstance(allocator, ChunkedAllocator):
                needed = allocator.chunks_needed(final_context)
                if committed_chunks + needed > allocator.total_chunks:
                    break
                committed_chunks += needed
                chunk_commitment[request.request_id] = needed
            elif not allocator.can_admit():
                break
            pending.popleft()
            allocator.admit(request.request_id, prompt)
            active[request.request_id] = _ActiveRequest(
                request_id=request.request_id, context=prompt, remaining=request.output_tokens
            )
            served += 1

        if not active:
            raise AllocationError("no request fits the system's KV-cache capacity")

        stride = min(step_stride, min(entry.remaining for entry in active.values()))
        contexts = [entry.context for entry in active.values()]
        step = system.decode_step(contexts)

        total_seconds += step.seconds * stride
        total_tokens += len(active) * stride
        steps += stride
        batch_samples.append(len(active))
        utilization_samples.append(step.pim_utilization)
        peak_batch = max(peak_batch, len(active))
        attention_total = attention_total + step.attention_breakdown.scaled(stride)
        fc_total = fc_total + step.fc_breakdown.scaled(stride)
        if allocator.capacity_bytes > 0:
            capacity_samples.append(allocator.used_bytes / allocator.capacity_bytes)

        finished = []
        for entry in active.values():
            allocator.append_token(entry.request_id, stride)
            entry.context += stride
            entry.remaining -= stride
            if entry.remaining <= 0:
                finished.append(entry.request_id)
        for request_id in finished:
            allocator.release(request_id)
            del active[request_id]
            committed_chunks -= chunk_commitment.pop(request_id, 0)

    def mean(samples):
        return sum(samples) / len(samples) if samples else 0.0

    return {
        "total_output_tokens": total_tokens,
        "total_seconds": total_seconds,
        "steps": steps,
        "average_batch_size": mean([float(b) for b in batch_samples]),
        "peak_batch_size": peak_batch,
        "average_pim_utilization": mean(utilization_samples),
        "average_capacity_utilization": mean(capacity_samples),
        "attention_total": attention_total.total,
        "fc_total": fc_total.total,
        "requests_served": served,
    }


def _trace(model, requests=12, output=16, seed=0):
    return generate_trace(
        get_dataset("qmsum"),
        num_requests=requests,
        seed=seed,
        context_window=model.context_window,
        output_tokens=output,
    )


def _assert_parity(system, trace, max_batch_size=None, step_stride=1):
    legacy = _legacy_simulate_serving(
        system, trace, max_batch_size=max_batch_size, step_stride=step_stride
    )
    result = simulate_serving(
        system, trace, max_batch_size=max_batch_size, step_stride=step_stride
    )
    assert result.total_output_tokens == legacy["total_output_tokens"]
    assert result.steps == legacy["steps"]
    assert result.peak_batch_size == legacy["peak_batch_size"]
    assert result.requests_served == legacy["requests_served"]
    assert result.total_seconds == pytest.approx(legacy["total_seconds"], abs=1e-9, rel=1e-12)
    assert result.throughput_tokens_per_s == pytest.approx(
        legacy["total_output_tokens"] / legacy["total_seconds"], abs=1e-9, rel=1e-12
    )
    assert result.average_batch_size == pytest.approx(
        legacy["average_batch_size"], abs=1e-12
    )
    assert result.average_pim_utilization == pytest.approx(
        legacy["average_pim_utilization"], abs=1e-12
    )
    assert result.average_capacity_utilization == pytest.approx(
        legacy["average_capacity_utilization"], abs=1e-12
    )
    assert result.attention_breakdown.total == pytest.approx(
        legacy["attention_total"], rel=1e-12
    )
    assert result.fc_breakdown.total == pytest.approx(legacy["fc_total"], rel=1e-12)
    # The engine additionally reports lifecycle metrics the legacy loop
    # could not produce.
    assert result.latency.ttft_mean_s > 0
    assert result.latency.latency_p50_s <= result.latency.latency_p95_s
    assert result.latency.latency_p95_s <= result.latency.latency_p99_s
    return result


class TestEngineParity:
    def test_static_allocation_parity(self, llm_7b):
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.tcp_dcs())
        _assert_parity(system, _trace(llm_7b), step_stride=4)

    def test_dpa_allocation_parity(self, llm_7b):
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        _assert_parity(system, _trace(llm_7b), step_stride=4)

    def test_stride_one_parity(self, llm_7b):
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        _assert_parity(system, _trace(llm_7b, requests=6, output=8), step_stride=1)

    def test_max_batch_size_parity(self, llm_7b):
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        _assert_parity(system, _trace(llm_7b), max_batch_size=3, step_stride=4)

    def test_gpu_baseline_parity(self, llm_7b):
        system = GPUSystemModel(model=llm_7b, num_gpus=2)
        _assert_parity(system, _trace(llm_7b, requests=8, output=8), step_stride=2)

    def test_baseline_config_parity(self, llm_7b):
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.baseline())
        _assert_parity(system, _trace(llm_7b, requests=8, output=8), step_stride=4)

    def test_parity_with_non_ascending_request_ids(self, llm_7b):
        # The legacy loop admits in *trace order*; shuffled request ids must
        # not change the admission order (the arrival sort must be stable).
        from dataclasses import replace

        from repro.workloads.traces import RequestTrace

        base = _trace(llm_7b, requests=8, output=8)
        shuffled_ids = [5, 2, 9, 0, 7, 3, 11, 1]
        requests = tuple(
            replace(request, request_id=new_id, output_tokens=4 + 2 * index)
            for index, (request, new_id) in enumerate(zip(base.requests, shuffled_ids, strict=True))
        )
        trace = RequestTrace(dataset=base.dataset, requests=requests)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        _assert_parity(system, trace, max_batch_size=2, step_stride=4)
