"""PrefixCache unit tests plus engine-level prefix-reuse behaviour."""

from dataclasses import dataclass

import pytest

from repro.serving import (
    LinearPrefillModel,
    PreemptionConfig,
    PreemptionCostModel,
    PrefillConfig,
    PrefixCache,
    serve,
)
from repro.serving.interfaces import StepResult
from repro.serving.preemption import EvictLRU
from repro.workloads.traces import Request, RequestTrace, multi_turn_trace

CHUNK = 1024 * 1024


@dataclass
class FlatSystem:
    """Constant-latency system; paged, roomy enough for no preemption."""

    kv_capacity_bytes: int = 2048 * CHUNK
    kv_bytes_per_token: int = CHUNK // 2
    max_context_tokens: int = 4096
    step_seconds: float = 0.01

    @property
    def dynamic_memory(self) -> bool:
        return True

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths) -> StepResult:
        if not context_lengths:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        return StepResult(seconds=self.step_seconds, pim_utilization=0.0)


def two_turn_trace(first_prompt=100, output=10, followup=40, gap_s=100.0):
    """One session, two turns; the second prompt extends the first context."""
    second_prompt = first_prompt + output + followup
    return RequestTrace(
        dataset="two-turn",
        requests=(
            Request(request_id=0, prompt_tokens=first_prompt, output_tokens=output,
                    arrival_s=0.0, session=0),
            Request(request_id=1, prompt_tokens=second_prompt, output_tokens=output,
                    arrival_s=gap_s, session=0),
        ),
    )


class TestPrefixCacheUnit:
    def test_miss_then_hit_counters(self):
        cache = PrefixCache()
        assert cache.lookup(7, 100) == 0
        assert (cache.hits, cache.misses) == (0, 1)
        cache.insert(7, 80)
        assert cache.lookup(7, 100) == 80
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_tokens == 80
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_lookup_clamps_to_prompt(self):
        cache = PrefixCache()
        cache.insert(1, 500)
        assert cache.lookup(1, 200) == 200
        assert cache.hit_tokens == 200

    def test_insert_extends_but_never_shrinks(self):
        cache = PrefixCache()
        cache.insert(1, 300)
        cache.insert(1, 100)  # a shorter turn cannot forget the longer prefix
        assert cache.cached_tokens(1) == 300
        assert cache.stored_tokens == 300
        cache.insert(1, 450)
        assert cache.cached_tokens(1) == 450
        assert cache.stored_tokens == 450

    def test_capacity_enforced_with_lru_eviction(self):
        cache = PrefixCache(capacity_tokens=100)
        cache.insert(1, 40)
        cache.insert(2, 40)
        cache.lookup(1, 10)  # refresh session 1: session 2 becomes LRU
        cache.insert(3, 40)  # overflows: 120 > 100
        assert 2 not in cache
        assert 1 in cache and 3 in cache
        assert cache.evictions == 1
        assert cache.evicted_tokens == 40
        assert cache.stored_tokens == 80

    def test_oversized_entry_truncated_to_budget(self):
        cache = PrefixCache(capacity_tokens=100)
        cache.insert(1, 1000)
        assert cache.cached_tokens(1) == 100
        assert cache.stored_tokens == 100
        assert cache.evictions == 0  # truncation is not an eviction

    def test_eviction_drains_lru_first(self):
        cache = PrefixCache(capacity_tokens=90)
        for key in (1, 2, 3):
            cache.insert(key, 30)
        cache.insert(4, 60)  # needs two evictions: 1 then 2
        assert list(iter([k for k in (1, 2) if k in cache])) == []
        assert 3 in cache and 4 in cache
        assert cache.evictions == 2

    def test_invalidate_and_clear_keep_counters(self):
        cache = PrefixCache()
        cache.insert(1, 50)
        cache.insert(2, 70)
        assert cache.invalidate(1) == 50
        assert cache.invalidate(1) == 0
        assert cache.stored_tokens == 70
        cache.lookup(2, 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.stored_tokens == 0
        assert cache.hits == 1  # lifetime counters survive clear()

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity_tokens"):
            PrefixCache(capacity_tokens=0)
        cache = PrefixCache()
        with pytest.raises(ValueError, match="prompt_tokens"):
            cache.lookup(1, 0)
        with pytest.raises(ValueError, match="tokens"):
            cache.insert(1, 0)


class TestEnginePrefixReuse:
    def test_blocking_prefill_charges_only_the_uncached_suffix(self):
        model = LinearPrefillModel(per_token_s=0.01)
        trace = two_turn_trace(first_prompt=100, output=10, followup=40)
        result = serve(
            FlatSystem(),
            trace,
            prefill=PrefillConfig(model=model),
            prefix_cache=PrefixCache(),
        )
        records = {record.request_id: record for record in result.request_records}
        # Turn 1 misses and pays its full 100-token prompt.
        assert records[0].prefill_s == pytest.approx(1.0)
        # Turn 1 finished at context 110; turn 2's 150-token prompt pays
        # only the 40-token suffix: cumulative(150) - cumulative(110).
        assert records[1].prefill_s == pytest.approx(0.4)
        assert result.prefix_hits == 1
        assert result.prefix_misses == 1
        assert result.prefix_hit_tokens == 110
        assert result.prefix_cache_enabled

    def test_chunked_prefill_charges_only_the_uncached_suffix(self):
        model = LinearPrefillModel(per_token_s=0.01)
        trace = two_turn_trace(first_prompt=100, output=10, followup=40)
        result = serve(
            FlatSystem(),
            trace,
            prefill=PrefillConfig(model=model, chunk_tokens=16),
            prefix_cache=PrefixCache(),
        )
        records = {record.request_id: record for record in result.request_records}
        assert records[0].prefill_s == pytest.approx(1.0)
        assert records[1].prefill_s == pytest.approx(0.4)
        assert result.prefix_hit_tokens == 110

    def test_without_cache_both_turns_pay_full_prefill(self):
        model = LinearPrefillModel(per_token_s=0.01)
        trace = two_turn_trace(first_prompt=100, output=10, followup=40)
        result = serve(FlatSystem(), trace, prefill=PrefillConfig(model=model))
        records = {record.request_id: record for record in result.request_records}
        assert records[1].prefill_s == pytest.approx(1.5)
        assert not result.prefix_cache_enabled
        assert result.prefix_hits == result.prefix_misses == 0

    def test_sessionless_requests_bypass_the_cache(self):
        trace = RequestTrace(
            dataset="no-sessions",
            requests=(
                Request(request_id=0, prompt_tokens=50, output_tokens=5),
                Request(request_id=1, prompt_tokens=50, output_tokens=5, arrival_s=10.0),
            ),
        )
        cache = PrefixCache()
        result = serve(FlatSystem(), trace, prefix_cache=cache)
        assert result.prefix_hits == result.prefix_misses == 0
        assert len(cache) == 0

    def test_counters_report_per_run_deltas(self):
        cache = PrefixCache()
        prefill = PrefillConfig(model=LinearPrefillModel(per_token_s=0.001))
        trace = two_turn_trace()
        first = serve(FlatSystem(), trace, prefill=prefill, prefix_cache=cache)
        # The cache is warm now: a re-run of the same trace hits on both
        # turns, and its counters must not include the first run's.
        second = serve(FlatSystem(), trace, prefill=prefill, prefix_cache=cache)
        assert first.prefix_misses == 1 and first.prefix_hits == 1
        assert second.prefix_misses == 0 and second.prefix_hits == 2

    def test_multi_turn_trace_hits_follow_up_turns(self):
        trace = multi_turn_trace(
            num_sessions=3,
            turns_per_session=4,
            first_prompt_tokens=64,
            followup_tokens=16,
            output_tokens=8,
            seed=11,
            turn_gap_s=50.0,
        )
        result = serve(
            FlatSystem(),
            trace,
            prefill=PrefillConfig(model=LinearPrefillModel(per_token_s=0.001)),
            prefix_cache=PrefixCache(),
        )
        # First turns miss; with 50s between turns every follow-up hits.
        assert result.prefix_misses == 3
        assert result.prefix_hits == 9
        assert result.prefix_hit_tokens > 0

    def test_no_prefill_model_means_no_admission_lookups(self):
        # Without a prefill model admission has nothing to discount, so
        # the cache must not report hits that bought nothing.  (Finished
        # turns are still retained for recompute-mode restores.)
        cache = PrefixCache()
        result = serve(FlatSystem(), two_turn_trace(), prefix_cache=cache)
        assert result.prefix_hits == result.prefix_misses == 0
        assert result.prefix_hit_tokens == 0
        assert cache.cached_tokens(0) > 0  # the session is still retained


class TestRestorePathReuse:
    """Recompute-mode restores: chunked routing + prefix discounts."""

    @staticmethod
    def preempting_engine_kwargs(chunk_tokens, prefix_cache=None):
        model = LinearPrefillModel(per_token_s=0.001)
        return dict(
            prefill=PrefillConfig(model=model, chunk_tokens=chunk_tokens),
            preemption=PreemptionConfig(
                policy=EvictLRU(), cost=PreemptionCostModel(mode="recompute")
            ),
            prefix_cache=prefix_cache,
        )

    @staticmethod
    def tiny_system():
        # 8 chunks, 2 tokens per chunk: four requests growing to 16 tokens
        # oversubscribe the cache 4x (mirrors test_preemption.py).
        return FlatSystem(kv_capacity_bytes=8 * CHUNK)

    @staticmethod
    def pressure_trace():
        return RequestTrace(
            dataset="pressure",
            requests=tuple(
                Request(request_id=index, prompt_tokens=2, output_tokens=14)
                for index in range(4)
            ),
        )

    def test_chunked_recompute_restores_avoid_the_lump_charge(self):
        # Regression: recompute restores used to charge restore_seconds as
        # an up-front lump and re-activate with prefill done, so recomputed
        # tokens never shared decode hardware like chunked prefill does.
        result = serve(
            self.tiny_system(),
            self.pressure_trace(),
            **self.preempting_engine_kwargs(chunk_tokens=4),
        )
        assert result.preemptions > 0
        assert result.recompute_tokens > 0
        # No lump: recompute eviction is free and the re-prefill is charged
        # through the chunked path instead of preemption overhead.
        assert result.preemption_overhead_s == 0.0
        # The re-prefill shows up as per-request prefill work beyond the
        # prompt's own cost (0.001 s/token * 2-token prompts).
        preempted = [r for r in result.request_records if r.preemptions]
        assert preempted
        assert any(r.prefill_s > 0.001 * r.prompt_tokens + 1e-12 for r in preempted)

    def test_blocking_recompute_restores_keep_the_lump_charge(self):
        result = serve(
            self.tiny_system(),
            self.pressure_trace(),
            **self.preempting_engine_kwargs(chunk_tokens=None),
        )
        assert result.preemptions > 0
        assert result.preemption_overhead_s > 0.0

    def test_chunked_and_lump_recompute_charge_the_same_total_seconds(self):
        # The chunked route spreads the same cumulative recompute cost over
        # decode steps; with a linear model and identical preemption
        # schedules the generated work must match exactly.
        chunked = serve(
            self.tiny_system(),
            self.pressure_trace(),
            **self.preempting_engine_kwargs(chunk_tokens=64),
        )
        lump = serve(
            self.tiny_system(),
            self.pressure_trace(),
            **self.preempting_engine_kwargs(chunk_tokens=None),
        )
        assert chunked.total_output_tokens == lump.total_output_tokens
        assert chunked.requests_served == lump.requests_served == 4

    def test_prefix_cache_discounts_recompute_restores(self):
        # Same pressure scenario, but every request belongs to a session
        # whose full final context is pre-seeded in the cache: restores
        # then recompute nothing.
        trace = RequestTrace(
            dataset="pressure",
            requests=tuple(
                Request(
                    request_id=index, prompt_tokens=2, output_tokens=14,
                    session=index,
                )
                for index in range(4)
            ),
        )
        cold = serve(
            self.tiny_system(), trace, **self.preempting_engine_kwargs(chunk_tokens=None)
        )
        warm_cache = PrefixCache()
        for index in range(4):
            warm_cache.insert(index, 16)
        warm = serve(
            self.tiny_system(),
            trace,
            **self.preempting_engine_kwargs(chunk_tokens=None, prefix_cache=warm_cache),
        )
        assert cold.recompute_tokens > 0
        assert warm.recompute_tokens == 0
        assert warm.preemption_overhead_s == 0.0
        assert cold.preemption_overhead_s > 0.0
        assert warm.total_output_tokens == cold.total_output_tokens
