"""``percentiles`` batching must be bit-identical to repeated ``percentile``."""

from __future__ import annotations

import math
import random

import pytest

from repro.serving import LatencyStats, RequestRecord, percentile, percentiles


class TestPercentilesBatch:
    def test_matches_single_calls_bit_for_bit(self):
        rng = random.Random(11)
        for size in (1, 2, 7, 100, 1001):
            samples = [rng.expovariate(3.0) for _ in range(size)]
            fractions = (0.0, 0.25, 0.50, 0.95, 0.99, 1.0)
            batched = percentiles(samples, fractions)
            singles = tuple(percentile(samples, fraction) for fraction in fractions)
            assert batched == singles

    def test_empty_samples(self):
        assert percentiles([], (0.5, 0.95)) == (0.0, 0.0)

    def test_fraction_range_checked(self):
        with pytest.raises(ValueError):
            percentiles([1.0], (0.5, 1.5))
        with pytest.raises(ValueError):
            percentiles([1.0], (-0.1,))

    def test_from_records_unchanged_by_batching(self):
        """LatencyStats still reports the exact per-metric percentiles."""
        rng = random.Random(23)
        records = []
        for request_id in range(200):
            arrival = rng.uniform(0.0, 5.0)
            first = arrival + rng.uniform(0.01, 1.0)
            finish = first + rng.uniform(0.1, 9.0)
            record = RequestRecord(
                request_id=request_id,
                prompt_tokens=128,
                output_tokens=32,
                arrival_s=arrival,
                admitted_s=arrival,
                first_token_s=first,
                finish_s=finish,
            )
            records.append(record)
        stats = LatencyStats.from_records(records)
        ttfts = [record.ttft_s for record in records]
        latencies = [record.latency_s for record in records]
        assert stats.ttft_p50_s == percentile(ttfts, 0.50)
        assert stats.ttft_p95_s == percentile(ttfts, 0.95)
        assert stats.ttft_p99_s == percentile(ttfts, 0.99)
        assert stats.latency_p50_s == percentile(latencies, 0.50)
        assert stats.latency_p99_s == percentile(latencies, 0.99)
        assert math.isclose(stats.ttft_mean_s, sum(ttfts) / len(ttfts))
