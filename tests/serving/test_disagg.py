"""Prefill/decode disaggregation: handoff pricing, parity, spec schema.

The two-pool topology must (a) charge every request's KV transfer before
its first decode token, priced from actual KV bytes through
``InterconnectConfig.point_to_point_seconds``; (b) collapse to the exact
colocated run when the topology is trivial (``prefill_replicas=0``), in
both engine modes; and (c) keep colocated spec JSON -- and therefore
``spec_hash`` -- bit-identical to the pre-disaggregation schema.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, run
from repro.api.spec import apply_override
from repro.serving.disagg import PrefillPool
from repro.serving.prefill import LinearPrefillModel, PrefillConfig
from repro.system.interconnect import InterconnectConfig
from repro.workloads.traces import Request, RequestTrace

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLE_SPEC = REPO_ROOT / "examples" / "specs" / "disagg_prompt_heavy.json"


def _base_dict(**trace_overrides) -> dict:
    trace = {
        "source": "synthetic",
        "num_requests": 8,
        "prompt_tokens": 2048,
        "output_tokens": 16,
        "arrival": "poisson",
        "rate_rps": 40.0,
    }
    trace.update(trace_overrides)
    return {
        "name": "disagg-test",
        "model": {"name": "LLM-7B-32K"},
        "system": {"kind": "xpu-only", "num_modules": 2},
        "trace": trace,
        "prefill": {"mode": "chunked", "model": "system", "chunk_tokens": 512},
        "router": {
            "replicas": 3,
            "topology": "disaggregated",
            "disagg": {"prefill_replicas": 1},
        },
        "seed": 3,
        "step_stride": 4,
    }


def _with_overrides(data: dict, overrides: dict) -> dict:
    clone = json.loads(json.dumps(data))
    for path, value in overrides.items():
        apply_override(clone, path, value)
    return clone


def _report_dict(data: dict) -> dict:
    report = run(ExperimentSpec.from_dict(data)).to_dict()
    for key in ("spec", "spec_hash", "engine_mode"):
        report.pop(key, None)
    return report


def assert_close(left, right, path: str = "report") -> None:
    if isinstance(left, dict):
        assert isinstance(right, dict) and left.keys() == right.keys(), path
        for key in left:
            assert_close(left[key], right[key], f"{path}.{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), path
        for index, (a, b) in enumerate(zip(left, right, strict=True)):
            assert_close(a, b, f"{path}[{index}]")
    elif isinstance(left, float) and not isinstance(left, bool):
        assert right == pytest.approx(left, rel=1e-9, abs=1e-9), path
    else:
        assert left == right, path


class TestHandoffPricing:
    def test_kv_transfer_priced_from_actual_kv_bytes(self):
        """kv_transfer_s equals sum of p2p(prompt_tokens x bytes/token)."""
        data = _base_dict()
        spec = ExperimentSpec.from_dict(data).validate()
        report = run(spec)
        assert report.disagg is not None
        from repro.api import build

        built = build(spec)
        disagg = spec.router.disagg
        link = InterconnectConfig(
            bandwidth_bytes_per_s=disagg.link_bandwidth_bytes_per_s,
            latency_s=disagg.link_latency_s,
        )
        per_request_bytes = 2048 * built.system.kv_bytes_per_token
        expected = report.disagg.handoffs * link.point_to_point_seconds(per_request_bytes)
        assert report.disagg.kv_transfer_s == pytest.approx(expected, rel=1e-12)
        assert report.disagg.kv_transfer_bytes == report.disagg.handoffs * per_request_bytes

    def test_transfer_charged_before_first_decode(self):
        """Adding pure link latency delays every TTFT by exactly that much."""
        extra = 0.125
        base = _base_dict(num_requests=1)
        del base["trace"]["arrival"], base["trace"]["rate_rps"]
        data = _with_overrides(base, {"router.disagg.link_latency_s": 0.0})
        slow = _with_overrides(base, {"router.disagg.link_latency_s": extra})
        base_ttft = run(ExperimentSpec.from_dict(data)).latency.ttft_mean_s
        slow_ttft = run(ExperimentSpec.from_dict(slow)).latency.ttft_mean_s
        assert slow_ttft - base_ttft == pytest.approx(extra, rel=1e-12)

    def test_tpot_excludes_transfer_and_prefill(self):
        """TPOT spans first-to-last token: pure decode, unmoved by the link."""
        data = _base_dict(num_requests=1)
        del data["trace"]["arrival"], data["trace"]["rate_rps"]
        slow = _with_overrides(data, {"router.disagg.link_latency_s": 0.125})
        base = run(ExperimentSpec.from_dict(data)).latency.tpot_mean_s
        delayed = run(ExperimentSpec.from_dict(slow)).latency.tpot_mean_s
        assert delayed == pytest.approx(base, rel=1e-12)

    def test_report_carries_disagg_block(self):
        report = run(ExperimentSpec.from_dict(_base_dict()))
        payload = report.to_dict()
        assert payload["metrics"]["kv_transfer_s"] > 0
        assert payload["metrics"]["handoffs"] == report.requests_served
        block = payload["disagg"]
        assert block["prefill_replicas"] == 1
        assert block["decode_replicas"] == 2
        assert block["handoffs"] == report.requests_served
        assert 0 < block["prefill_pool_utilization"] <= 1.0
        assert 0 < block["decode_pool_utilization"] <= 1.0

    def test_colocated_report_has_no_disagg_keys(self):
        data = _with_overrides(
            _base_dict(), {"router.topology": "colocated", "router.disagg": None}
        )
        payload = run(ExperimentSpec.from_dict(data)).to_dict()
        assert "disagg" not in payload
        assert "kv_transfer_s" not in payload["metrics"]
        assert "handoffs" not in payload["metrics"]


class TestTrivialTopologyParity:
    @pytest.mark.parametrize("mode", ["scalar", "fast"])
    def test_zero_prefill_replicas_matches_colocated(self, mode):
        data = json.loads(EXAMPLE_SPEC.read_text())
        trivial = _with_overrides(
            data, {"router.disagg.prefill_replicas": 0, "engine.mode": mode}
        )
        colocated = _with_overrides(
            data,
            {"router.topology": "colocated", "router.disagg": None, "engine.mode": mode},
        )
        assert_close(_report_dict(colocated), _report_dict(trivial))

    def test_example_spec_improves_decode_tpot_at_equal_hardware(self):
        """The shipped spec's headline claim: disagg beats colocated TPOT p95."""
        data = json.loads(EXAMPLE_SPEC.read_text())
        colocated = _with_overrides(
            data, {"router.topology": "colocated", "router.disagg": None}
        )
        disagg_report = run(ExperimentSpec.from_dict(data))
        colocated_report = run(ExperimentSpec.from_dict(colocated))
        assert disagg_report.requests_served == colocated_report.requests_served
        assert (
            disagg_report.latency.tpot_p95_s < 0.75 * colocated_report.latency.tpot_p95_s
        )


class TestPrefillPool:
    def _pool(self, replicas: int = 1) -> PrefillPool:
        from repro.api import ExperimentSpec, build

        spec = ExperimentSpec.from_dict(
            {
                "name": "pool-under-test",
                "model": {"name": "LLM-7B-32K"},
                "system": {"kind": "xpu-only", "num_modules": 1},
            }
        )
        system = build(spec).system
        return PrefillPool(
            system=system,
            prefill=PrefillConfig(model=LinearPrefillModel(per_token_s=1e-3), chunk_tokens=64),
            replicas=replicas,
            link=InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=0.0),
        )

    def test_serial_fcfs_per_replica(self):
        """Back-to-back prompts on one replica queue; finish times telescope."""
        pool = self._pool(replicas=1)
        trace = RequestTrace(
            dataset="unit",
            requests=(
                Request(request_id=0, prompt_tokens=100, output_tokens=4, arrival_s=0.0),
                Request(request_id=1, prompt_tokens=200, output_tokens=4, arrival_s=0.0),
            ),
        )
        phase = pool.run(trace)
        first, second = phase.handoffs[0], phase.handoffs[1]
        assert first.prefill_s == pytest.approx(0.1)
        assert second.prefill_start_s == pytest.approx(first.prefill_finish_s)
        assert phase.makespan_s == pytest.approx(0.1 + 0.2)
        assert phase.busy_seconds == (pytest.approx(0.3),)

    def test_least_loaded_replica_selection(self):
        pool = self._pool(replicas=2)
        trace = RequestTrace(
            dataset="unit",
            requests=tuple(
                Request(request_id=i, prompt_tokens=100, output_tokens=4, arrival_s=0.0)
                for i in range(2)
            ),
        )
        phase = pool.run(trace)
        assert {phase.handoffs[0].prefill_replica, phase.handoffs[1].prefill_replica} == {0, 1}
        assert phase.makespan_s == pytest.approx(0.1)

    def test_unservable_request_dropped_not_fatal(self):
        """A prompt the allocator can never reserve is dropped, not fatal."""

        class TinySystem:
            # Two 1 MiB chunks of KV capacity: a 4096-token context can
            # never be admitted, a ~68-token one fits in a single chunk.
            kv_capacity_bytes = 2 * 1024 * 1024
            kv_bytes_per_token = 1024
            max_context_tokens = 4096
            dynamic_memory = True

        pool = PrefillPool(
            system=TinySystem(),
            prefill=PrefillConfig(model=LinearPrefillModel(per_token_s=1e-3), chunk_tokens=64),
            replicas=1,
            link=InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=0.0),
        )
        trace = RequestTrace(
            dataset="unit",
            requests=(
                Request(request_id=0, prompt_tokens=64, output_tokens=4, arrival_s=0.0),
                Request(request_id=1, prompt_tokens=4096, output_tokens=8, arrival_s=0.0),
            ),
        )
        phase = pool.run(trace)
        assert phase.dropped == (1,)
        assert set(phase.handoffs) == {0}


class TestSpecSchema:
    def test_colocated_spec_json_is_bit_identical_to_pre_disagg_schema(self):
        data = _with_overrides(
            _base_dict(), {"router.topology": "colocated", "router.disagg": None}
        )
        spec = ExperimentSpec.from_dict(data).validate()
        payload = spec.to_dict()
        assert "topology" not in payload["router"]
        assert "disagg" not in payload["router"]
        assert ExperimentSpec.from_dict(payload) == spec

    def test_disagg_spec_round_trips(self):
        spec = ExperimentSpec.from_dict(_base_dict()).validate()
        payload = spec.to_dict()
        assert payload["router"]["topology"] == "disaggregated"
        assert payload["router"]["disagg"]["prefill_replicas"] == 1
        assert ExperimentSpec.from_dict(payload) == spec
        assert ExperimentSpec.from_dict(payload).spec_hash == spec.spec_hash

    @pytest.mark.parametrize(
        ("overrides", "match"),
        [
            ({"router.disagg": None}, "requires router.disagg"),
            ({"router.disagg.prefill_replicas": 3}, "leave no decode replica"),
            ({"router.disagg.prefill_replicas": 5}, "leave no decode replica"),
            ({"prefill.mode": "blocking"}, "chunked"),
            ({"prefill.mode": "none"}, "chunked"),
            ({"prefix_cache.enabled": True}, "prefix_cache"),
            ({"router.topology": "banana"}, "router.topology"),
        ],
    )
    def test_invalid_disagg_specs_rejected(self, overrides, match):
        data = _with_overrides(_base_dict(), overrides)
        with pytest.raises(ValueError, match=match):
            ExperimentSpec.from_dict(data).validate()

    def test_disagg_without_disaggregated_topology_rejected(self):
        data = _with_overrides(_base_dict(), {"router.topology": "colocated"})
        with pytest.raises(ValueError, match="requires router.topology"):
            ExperimentSpec.from_dict(data).validate()

    def test_cli_lists_topologies(self, capsys):
        from repro.api.cli import main

        assert main(["list", "topologies"]) == 0
        out = capsys.readouterr().out
        assert "colocated" in out
        assert "disaggregated" in out
