"""Tests for the prefill cost model and its engine integration."""

from dataclasses import dataclass

import pytest

from repro.baselines.cent import cent_system_config
from repro.baselines.neupims import neupims_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.serving import (
    LinearPrefillModel,
    PrefillConfig,
    ServingEngine,
    StepResult,
    prefill_model_for,
    serve,
)
from repro.workloads.traces import Request, RequestTrace


@dataclass
class ToySystem:
    kv_capacity_bytes: int = 1_000_000
    kv_bytes_per_token: int = 1
    max_context_tokens: int = 65536
    step_seconds: float = 0.01

    @property
    def dynamic_memory(self) -> bool:
        # Static allocation: the chunked allocator's 1MB chunk granularity
        # would round this toy capacity down to zero admittable requests.
        return False

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths) -> StepResult:
        if not context_lengths:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        return StepResult(seconds=self.step_seconds, pim_utilization=0.0)


def single_request_trace(prompt, output=4, arrival=0.0, request_id=0):
    return RequestTrace(
        dataset="toy",
        requests=(
            Request(
                request_id=request_id,
                prompt_tokens=prompt,
                output_tokens=output,
                arrival_s=arrival,
            ),
        ),
    )


class TestLinearPrefillModel:
    def test_zero_tokens_cost_nothing(self):
        model = LinearPrefillModel(per_token_s=1e-3, per_token_sq_s=1e-6, base_s=0.5)
        assert model.cumulative_seconds(0) == 0.0
        assert model.cumulative_seconds(-5) == 0.0

    def test_closed_form(self):
        model = LinearPrefillModel(per_token_s=2.0, per_token_sq_s=3.0, base_s=1.0)
        assert model.cumulative_seconds(10) == pytest.approx(1.0 + 20.0 + 300.0)

    def test_monotonic(self):
        model = LinearPrefillModel(per_token_s=1e-4, per_token_sq_s=1e-8)
        costs = [model.cumulative_seconds(t) for t in (1, 128, 4096, 65536)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            LinearPrefillModel(per_token_s=-1.0)

    def test_chunk_tokens_validation(self):
        model = LinearPrefillModel(per_token_s=1e-4)
        with pytest.raises(ValueError):
            PrefillConfig(model, chunk_tokens=0)
        assert PrefillConfig(model).mode == "blocking"
        assert PrefillConfig(model, chunk_tokens=256).mode == "chunked"


class TestSystemPrefillModels:
    def test_prefill_model_for_rejects_plain_systems(self):
        with pytest.raises(TypeError):
            prefill_model_for(object())

    def test_system_models_are_monotonic_and_positive(self, llm_7b):
        pim_only = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        xpu_pim = neupims_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        for system in (pim_only, xpu_pim):
            model = prefill_model_for(system)
            assert model.cumulative_seconds(0) == 0.0
            costs = [model.cumulative_seconds(t) for t in (128, 1024, 4096)]
            assert costs == sorted(costs)
            assert costs[0] > 0

    def test_pim_only_prefill_slower_than_xpu_pim(self, llm_7b):
        # Prefill is compute bound; the CENT PNM (3 TFLOPS/module) is far
        # slower at it than NeuPIMs-style matrix units -- the reason
        # heterogeneous deployments keep prefill off PIM.
        pim_only = prefill_model_for(cent_system_config(llm_7b, pimphony=PIMphonyConfig.full()))
        xpu_pim = prefill_model_for(
            neupims_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        )
        assert pim_only.cumulative_seconds(4096) > xpu_pim.cumulative_seconds(4096)


class TestEnginePrefillIntegration:
    def test_blocking_prefill_charges_exactly_queue_plus_prefill_plus_step(self):
        system = ToySystem(step_seconds=0.01)
        model = LinearPrefillModel(per_token_s=1e-3)
        result = serve(
            system, single_request_trace(prompt=200), prefill=PrefillConfig(model)
        )
        record = result.request_records[0]
        # Arrival 0, admitted immediately: TTFT = prefill(200) + one step.
        assert record.ttft_s == pytest.approx(0.2 + 0.01)
        assert record.prefill_s == pytest.approx(0.2)
        assert result.prefill_mode == "blocking"
        assert result.prefill_seconds_total == pytest.approx(0.2)

    def test_longer_context_has_strictly_larger_ttft(self):
        system = ToySystem()
        model = LinearPrefillModel(per_token_s=1e-4, per_token_sq_s=1e-9)
        short = serve(system, single_request_trace(128), prefill=PrefillConfig(model))
        long = serve(system, single_request_trace(4096), prefill=PrefillConfig(model))
        assert long.ttft_mean_s > short.ttft_mean_s

    def test_no_prefill_config_keeps_legacy_free_prompt(self):
        system = ToySystem()
        result = serve(system, single_request_trace(4096))
        assert result.prefill_mode == "none"
        assert result.prefill_seconds_total == 0.0
        assert result.request_records[0].ttft_s == pytest.approx(system.step_seconds)

    def test_chunked_single_request_matches_blocking_ttft(self):
        # With nothing to interleave against, chunked prefill telescopes to
        # the same cumulative cost as blocking.
        system = ToySystem()
        model = LinearPrefillModel(per_token_s=1e-3, per_token_sq_s=1e-7)
        blocking = serve(system, single_request_trace(500), prefill=PrefillConfig(model))
        chunked = serve(
            system,
            single_request_trace(500),
            prefill=PrefillConfig(model, chunk_tokens=64),
        )
        assert chunked.ttft_mean_s == pytest.approx(blocking.ttft_mean_s)
        assert chunked.prefill_seconds_total == pytest.approx(
            blocking.prefill_seconds_total
        )
        assert chunked.prefill_mode == "chunked"

    def test_chunked_prefill_stretches_concurrent_decode(self):
        # Request 0 decodes while request 1 prefills: in chunked mode the
        # prefill work rides on the decode steps, lengthening them; tokens
        # served must be identical either way.
        system = ToySystem()
        model = LinearPrefillModel(per_token_s=1e-3)
        requests = (
            Request(request_id=0, prompt_tokens=8, output_tokens=64, arrival_s=0.0),
            Request(request_id=1, prompt_tokens=400, output_tokens=8, arrival_s=0.02),
        )
        trace = RequestTrace(dataset="toy", requests=requests)
        blocking = serve(system, trace, prefill=PrefillConfig(model))
        chunked = serve(system, trace, prefill=PrefillConfig(model, chunk_tokens=50))
        assert blocking.total_output_tokens == chunked.total_output_tokens == 72
        # Blocking models a parallel prefill path, so the decode clock never
        # stretches; chunked serialises prefill onto the decode hardware.
        assert chunked.makespan_s > blocking.makespan_s

    def test_blocking_prefill_with_all_requests_prefilling_advances_clock(self):
        # Both requests arrive together and prefill for a while with no
        # decode work available: the engine must idle the decode path
        # forward instead of spinning.
        system = ToySystem()
        model = LinearPrefillModel(per_token_s=1e-2)
        requests = (
            Request(request_id=0, prompt_tokens=100, output_tokens=2, arrival_s=0.0),
            Request(request_id=1, prompt_tokens=50, output_tokens=2, arrival_s=0.0),
        )
        trace = RequestTrace(dataset="toy", requests=requests)
        result = serve(system, trace, prefill=PrefillConfig(model))
        assert result.requests_served == 2
        assert result.idle_seconds > 0
        # Request 1 prefills faster and decodes first.
        first, second = result.request_records
        assert second.first_token_s < first.first_token_s

    def test_chunked_prefill_rate_independent_of_step_stride(self):
        # step_stride is an accuracy/cost knob; chunked prefill must
        # advance chunk_tokens per decode *step*, not per evaluation, so
        # TTFT cannot change materially with the stride.
        system = ToySystem()
        model = LinearPrefillModel(per_token_s=1e-3)
        requests = (
            Request(request_id=0, prompt_tokens=8, output_tokens=64, arrival_s=0.0),
            Request(request_id=1, prompt_tokens=800, output_tokens=8, arrival_s=0.02),
        )
        trace = RequestTrace(dataset="toy", requests=requests)
        fine = serve(system, trace, prefill=PrefillConfig(model, chunk_tokens=64))
        coarse = serve(
            system,
            trace,
            step_stride=8,
            prefill=PrefillConfig(model, chunk_tokens=64),
        )
        ttft_fine = fine.request_records[1].ttft_s
        ttft_coarse = coarse.request_records[1].ttft_s
        # Residual difference is admission-time quantisation at stride
        # boundaries (one stride window = 8 * 0.01s), not prefill-rate
        # scaling -- the unfixed engine was ~2x (0.9s) off here.
        assert ttft_coarse == pytest.approx(ttft_fine, abs=8 * system.step_seconds)

    def test_engine_constructor_accepts_prefill(self):
        engine = ServingEngine(
            system=ToySystem(),
            prefill=PrefillConfig(LinearPrefillModel(per_token_s=1e-4)),
        )
        result = engine.run(single_request_trace(64))
        assert result.prefill_mode == "blocking"

    def test_latency_stats_expose_prefill_and_ttft_percentiles(self):
        system = ToySystem()
        model = LinearPrefillModel(per_token_s=1e-3)
        requests = tuple(
            Request(request_id=i, prompt_tokens=100 * (i + 1), output_tokens=4)
            for i in range(4)
        )
        result = serve(
            system,
            RequestTrace(dataset="toy", requests=requests),
            prefill=PrefillConfig(model),
        )
        stats = result.latency
        assert stats.prefill_mean_s == pytest.approx(0.1 * (1 + 2 + 3 + 4) / 4)
        assert stats.ttft_p50_s <= stats.ttft_p95_s <= stats.ttft_p99_s
        assert stats.tpot_p50_s <= stats.tpot_p95_s <= stats.tpot_p99_s
