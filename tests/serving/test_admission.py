"""Unit tests for admission policy ordering."""

from repro.serving.admission import (
    AdmissionCandidate,
    AdmissionPolicy,
    CapacityAwareAdmission,
    FCFSAdmission,
    PriorityAdmission,
)
from repro.workloads.traces import Request


def candidate(request_id, prompt=1000, output=16, arrival=0.0, priority=0):
    request = Request(
        request_id=request_id,
        prompt_tokens=prompt,
        output_tokens=output,
        arrival_s=arrival,
        priority=priority,
    )
    return AdmissionCandidate(
        request=request, prompt_tokens=prompt, final_tokens=prompt + output
    )


class TestFCFS:
    def test_preserves_arrival_order(self):
        waiting = [candidate(0, arrival=0.0), candidate(1, arrival=1.0), candidate(2, arrival=2.0)]
        ordered = list(FCFSAdmission().order(waiting))
        assert [entry.request_id for entry in ordered] == [0, 1, 2]

    def test_blocks_head_of_line(self):
        assert FCFSAdmission().head_of_line is True

    def test_satisfies_protocol(self):
        assert isinstance(FCFSAdmission(), AdmissionPolicy)


class TestCapacityAware:
    def test_orders_smallest_first(self):
        waiting = [
            candidate(0, prompt=30_000),
            candidate(1, prompt=1_000),
            candidate(2, prompt=10_000),
        ]
        ordered = list(CapacityAwareAdmission().order(waiting))
        assert [entry.request_id for entry in ordered] == [1, 2, 0]

    def test_ties_broken_by_arrival(self):
        waiting = [
            candidate(1, prompt=1_000, arrival=5.0),
            candidate(0, prompt=1_000, arrival=1.0),
        ]
        ordered = list(CapacityAwareAdmission().order(waiting))
        assert [entry.request_id for entry in ordered] == [0, 1]

    def test_skips_blockers(self):
        assert CapacityAwareAdmission().head_of_line is False


class TestPriority:
    def test_orders_by_descending_priority(self):
        waiting = [
            candidate(0, priority=0),
            candidate(1, priority=5),
            candidate(2, priority=1),
        ]
        ordered = list(PriorityAdmission().order(waiting))
        assert [entry.request_id for entry in ordered] == [1, 2, 0]

    def test_equal_priority_falls_back_to_arrival(self):
        waiting = [
            candidate(3, priority=2, arrival=9.0),
            candidate(1, priority=2, arrival=1.0),
            candidate(2, priority=2, arrival=4.0),
        ]
        ordered = list(PriorityAdmission().order(waiting))
        assert [entry.request_id for entry in ordered] == [1, 2, 3]
