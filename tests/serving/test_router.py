"""Edge-case tests for the multi-replica router and fleet metrics."""

from dataclasses import dataclass, replace

import pytest

from repro.serving import (
    CapacityAwareAdmission,
    CapacityAwareRouting,
    FleetResult,
    KVBalancedRouting,
    LeastOutstandingRouting,
    ReplicaRouter,
    ReplicaState,
    RoundRobinRouting,
    ServingEngine,
    SessionAffinityRouting,
    StepResult,
)
from repro.workloads.traces import (
    Request,
    RequestTrace,
    assign_sessions,
    partition_trace,
)


@dataclass
class ToySystem:
    """Constant-latency decode system with tunable KV capacity.

    Uses static (T_max) allocation so tiny byte-level capacities behave
    proportionally -- the chunked allocator's 1MB granularity would round
    them all down to zero.
    """

    kv_capacity_bytes: int = 1_000_000
    kv_bytes_per_token: int = 1
    max_context_tokens: int = 4096
    step_seconds: float = 0.01

    @property
    def dynamic_memory(self) -> bool:
        return False

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths) -> StepResult:
        if not context_lengths:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        return StepResult(seconds=self.step_seconds, pim_utilization=0.0)


def make_trace(num_requests=8, prompt=64, output=4, gap_s=0.0):
    requests = tuple(
        Request(
            request_id=index,
            prompt_tokens=prompt,
            output_tokens=output,
            arrival_s=index * gap_s,
        )
        for index in range(num_requests)
    )
    return RequestTrace(dataset="toy", requests=requests)


def toy_engine(**system_kwargs) -> ServingEngine:
    return ServingEngine(system=ToySystem(**system_kwargs))


class TestDegenerateConfigs:
    def test_zero_replicas_raises(self):
        with pytest.raises(ValueError):
            ReplicaRouter(replicas=())
        with pytest.raises(ValueError):
            ReplicaRouter.homogeneous(toy_engine, num_replicas=0)

    def test_single_replica_fleet_matches_engine_exactly(self):
        trace = make_trace(num_requests=10, gap_s=0.002)
        fleet = ReplicaRouter.homogeneous(toy_engine, num_replicas=1).run(trace)
        single = toy_engine().run(trace)
        # Merged fleet percentiles are recomputed over the union of request
        # records, so with one replica they must equal the engine's own.
        assert fleet.latency == single.latency
        assert fleet.makespan_s == single.makespan_s
        assert fleet.total_output_tokens == single.total_output_tokens
        assert fleet.requests_served == single.requests_served
        assert fleet.request_records == single.request_records

    def test_empty_trace_yields_empty_fleet_result(self):
        trace = RequestTrace(dataset="toy", requests=())
        fleet = ReplicaRouter.homogeneous(toy_engine, num_replicas=3).run(trace)
        assert fleet.requests_served == 0
        assert fleet.total_output_tokens == 0
        assert fleet.aggregate_throughput_tokens_per_s == 0.0


class TestRoutingPolicies:
    def test_round_robin_cycles_deterministically(self):
        trace = make_trace(num_requests=9)
        router = ReplicaRouter.homogeneous(toy_engine, 3, policy=RoundRobinRouting())
        assert router.dispatch(trace) == [0, 1, 2, 0, 1, 2, 0, 1, 2]
        # A second dispatch resets the cursor: same trace, same assignment.
        assert router.dispatch(trace) == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_least_outstanding_breaks_ties_by_lowest_index(self):
        # Arrivals are far closer together than the estimated service time,
        # so no booked completion drains between dispatches: every pick is
        # decided purely by (outstanding, index).
        trace = make_trace(num_requests=6, gap_s=1e-6)
        router = ReplicaRouter.homogeneous(toy_engine, 3, policy=LeastOutstandingRouting())
        assert router.dispatch(trace) == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_prefers_drained_replica(self):
        # With arrivals much slower than the estimated service time the
        # booked completions drain before each dispatch, so every request
        # finds all replicas tied at zero outstanding -> replica 0.
        trace = make_trace(num_requests=4, output=1, gap_s=10.0)
        router = ReplicaRouter.homogeneous(toy_engine, 3, policy=LeastOutstandingRouting())
        assert router.dispatch(trace) == [0, 0, 0, 0]

    def test_session_affinity_pins_sessions_to_one_replica(self):
        trace = make_trace(num_requests=12, gap_s=1e-6)
        trace = assign_sessions(trace, [index % 3 for index in range(12)])
        router = ReplicaRouter.homogeneous(toy_engine, 4, policy=SessionAffinityRouting())
        assignments = router.dispatch(trace)
        by_session = {}
        for request, assignment in zip(trace.requests, assignments, strict=True):
            by_session.setdefault(request.session, set()).add(assignment)
        assert all(len(replicas) == 1 for replicas in by_session.values())
        # Three distinct sessions spread over distinct replicas (fallback is
        # least-outstanding, so fresh sessions do not pile onto replica 0).
        assert len({next(iter(v)) for v in by_session.values()}) == 3

    def test_sessionless_requests_fall_back(self):
        trace = make_trace(num_requests=4, gap_s=1e-6)
        router = ReplicaRouter.homogeneous(toy_engine, 2, policy=SessionAffinityRouting())
        assert router.dispatch(trace) == [0, 1, 0, 1]


class TestCapacityAwareRouting:
    def test_dead_replica_receives_nothing_and_fleet_completes(self):
        # Replica 0's allocator rejects every request (zero KV capacity);
        # the router must route around it without livelocking.
        engines = [toy_engine(kv_capacity_bytes=0), toy_engine()]
        router = ReplicaRouter(replicas=engines, policy=CapacityAwareRouting())
        trace = make_trace(num_requests=6)
        assignments = router.dispatch(trace)
        assert assignments == [1] * 6
        fleet = router.run(trace)
        assert fleet.requests_served == 6
        assert fleet.requests_dropped == 0

    def test_all_replicas_dead_drops_at_router(self):
        engines = [toy_engine(kv_capacity_bytes=0), toy_engine(kv_capacity_bytes=0)]
        router = ReplicaRouter(replicas=engines, policy=CapacityAwareRouting())
        trace = make_trace(num_requests=5)
        fleet = router.run(trace)
        assert fleet.router_dropped == 5
        assert fleet.requests_dropped == 5
        assert fleet.requests_served == 0

    def test_round_robin_to_dead_replica_with_skip_admission_completes(self):
        # A capacity-blind policy will hand requests to the dead replica;
        # with a skip-over admission policy the replica drops them instead
        # of wedging, and the run still terminates.
        def engine(capacity):
            return ServingEngine(
                system=ToySystem(kv_capacity_bytes=capacity),
                admission=CapacityAwareAdmission(),
            )

        router = ReplicaRouter(
            replicas=[engine(0), engine(1_000_000)], policy=RoundRobinRouting()
        )
        trace = make_trace(num_requests=6)
        fleet = router.run(trace)
        assert fleet.requests_served == 3
        assert fleet.requests_dropped == 3
        assert fleet.router_dropped == 0

    def test_balances_reserved_tokens_under_skewed_contexts(self):
        # Every 4th request is huge; round-robin with 4 replicas aliases
        # all of them onto replica 0, capacity-aware spreads them.
        requests = tuple(
            Request(
                request_id=index,
                prompt_tokens=3000 if index % 4 == 0 else 50,
                output_tokens=4,
                arrival_s=index * 1e-6,
            )
            for index in range(16)
        )
        trace = RequestTrace(dataset="skew", requests=requests)

        def engine():
            return toy_engine(kv_capacity_bytes=8000)

        round_robin = ReplicaRouter.homogeneous(engine, 4, policy=RoundRobinRouting())
        heavy_per_replica = [0, 0, 0, 0]
        for request, assignment in zip(trace.requests, round_robin.dispatch(trace), strict=True):
            if request.prompt_tokens > 1000:
                heavy_per_replica[assignment] += 1
        assert heavy_per_replica == [4, 0, 0, 0]

        aware = ReplicaRouter.homogeneous(engine, 4, policy=CapacityAwareRouting())
        heavy_per_replica = [0, 0, 0, 0]
        for request, assignment in zip(trace.requests, aware.dispatch(trace), strict=True):
            if request.prompt_tokens > 1000:
                heavy_per_replica[assignment] += 1
        assert heavy_per_replica == [1, 1, 1, 1]


class TestFleetMetrics:
    def test_fleet_counters_sum_replicas(self):
        trace = make_trace(num_requests=8, output=4)
        fleet = ReplicaRouter.homogeneous(toy_engine, 2, policy=RoundRobinRouting()).run(trace)
        assert fleet.num_replicas == 2
        assert fleet.total_output_tokens == 8 * 4
        assert fleet.makespan_s == max(r.makespan_s for r in fleet.replica_results)
        assert fleet.busy_seconds == sum(r.total_seconds for r in fleet.replica_results)
        assert fleet.load_imbalance >= 1.0

    def test_merge_order_is_request_id_sorted(self):
        trace = make_trace(num_requests=7)
        fleet = ReplicaRouter.homogeneous(toy_engine, 3, policy=RoundRobinRouting()).run(trace)
        ids = [record.request_id for record in fleet.request_records]
        assert ids == sorted(ids) == list(range(7))

    def test_from_replicas_with_no_finished_requests(self):
        fleet = FleetResult.from_replicas("round-robin", [], router_dropped=0)
        assert fleet.makespan_s == 0.0
        assert fleet.aggregate_throughput_tokens_per_s == 0.0
        assert fleet.load_imbalance == 1.0


class TestTracePartitioning:
    def test_partition_preserves_ids_arrivals_and_order(self):
        trace = make_trace(num_requests=6, gap_s=0.5)
        parts = partition_trace(trace, [0, 1, 0, None, 1, 0], 2)
        assert [r.request_id for r in parts[0].requests] == [0, 2, 5]
        assert [r.request_id for r in parts[1].requests] == [1, 4]
        assert parts[0].requests[1].arrival_s == pytest.approx(1.0)
        assert all(part.dataset == trace.dataset for part in parts)

    def test_partition_validates_inputs(self):
        trace = make_trace(num_requests=2)
        with pytest.raises(ValueError):
            partition_trace(trace, [0], 2)
        with pytest.raises(ValueError):
            partition_trace(trace, [0, 2], 2)
        with pytest.raises(ValueError):
            partition_trace(trace, [0, 0], 0)

    def test_assign_sessions_positional_and_validated(self):
        trace = make_trace(num_requests=3)
        tagged = assign_sessions(trace, [7, None, 7])
        assert [r.session for r in tagged.requests] == [7, None, 7]
        with pytest.raises(ValueError):
            assign_sessions(trace, [1])

    def test_policy_out_of_range_choice_is_rejected(self):
        class BadPolicy:
            name = "bad"

            def reset(self):
                pass

            def select(self, request, replicas):
                return len(replicas)  # off-by-one on purpose

        router = ReplicaRouter(replicas=[toy_engine()], policy=BadPolicy())
        with pytest.raises(ValueError):
            router.dispatch(make_trace(num_requests=1))

    def test_undersized_replica_routed_around_in_heterogeneous_fleet(self):
        # One replica cannot fit even a single static reservation; the
        # capacity-aware policy must steer everything to the roomier one.
        small = toy_engine(max_context_tokens=128, kv_capacity_bytes=64)
        large = toy_engine(max_context_tokens=4096)
        router = ReplicaRouter(replicas=[small, large], policy=CapacityAwareRouting())
        trace = RequestTrace(
            dataset="toy",
            requests=(Request(request_id=0, prompt_tokens=500, output_tokens=4),),
        )
        assert router.dispatch(trace) == [1]

    def test_replayed_trace_unsorted_arrivals_dispatch_in_time_order(self):
        base = make_trace(num_requests=3)
        shuffled = RequestTrace(
            dataset="toy",
            requests=tuple(
                replace(request, arrival_s=arrival)
                for request, arrival in zip(base.requests, [2.0, 0.0, 1.0], strict=True)
            ),
        )
        router = ReplicaRouter.homogeneous(toy_engine, 3, policy=RoundRobinRouting())
        assignments = router.dispatch(shuffled)
        # Round-robin order follows arrival time, not trace position.
        assert assignments == [2, 0, 1]


class TestAcceptingContract:
    """Dispatching to a downed or draining replica is impossible by design.

    The fleet timeline (:mod:`repro.serving.fleet_events`) clears
    ``ReplicaState.accepting`` on failure or drain; every policy must
    skip those replicas, and ``dispatch`` enforces the contract even
    against a misbehaving policy.
    """

    @staticmethod
    def _states(n=3, down=()):
        states = [ReplicaState(index, toy_engine()) for index in range(n)]
        for index in down:
            states[index].accepting = False
        return states

    def _policies(self):
        return [
            RoundRobinRouting(),
            LeastOutstandingRouting(),
            CapacityAwareRouting(),
            KVBalancedRouting(),
            SessionAffinityRouting(),
        ]

    def test_every_policy_skips_non_accepting_replicas(self):
        request = make_trace(num_requests=1).requests[0]
        for policy in self._policies():
            policy.reset()
            states = self._states(down=[1])
            for _ in range(6):  # cycle round-robin past the downed slot
                choice = policy.select(request, states)
                assert choice is not None and choice != 1, policy.name

    def test_every_policy_returns_none_when_none_accepting(self):
        request = make_trace(num_requests=1).requests[0]
        for policy in self._policies():
            policy.reset()
            states = self._states(down=[0, 1, 2])
            assert policy.select(request, states) is None, policy.name

    def test_dispatch_rejects_non_accepting_choice(self):
        class SabotagePolicy:
            """Clears a replica's accepting flag, then selects it anyway."""

            name = "sabotage"

            def reset(self):
                pass

            def select(self, request, replicas):
                replicas[0].accepting = False
                return 0

        router = ReplicaRouter(
            replicas=[toy_engine(), toy_engine()], policy=SabotagePolicy()
        )
        with pytest.raises(ValueError, match="non-accepting"):
            router.dispatch(make_trace(num_requests=1))

    def test_session_affinity_repins_when_pinned_replica_downed(self):
        policy = SessionAffinityRouting()
        policy.reset()
        states = self._states(n=2)
        request = replace(make_trace(num_requests=1).requests[0], session=7)
        first = policy.select(request, states)
        assert first is not None
        states[first].accepting = False
        second = policy.select(request, states)
        assert second is not None and second != first
        # The session is re-pinned: once the new home is chosen, it sticks.
        assert policy.select(request, states) == second

    def test_in_flight_view_tracks_assignments(self):
        state = ReplicaState(0, toy_engine())
        requests = make_trace(num_requests=3).requests
        for request in requests:
            state.assign(request, 0.0)
        view = state.in_flight()
        assert set(view) == {0, 1, 2}
        assert all(tokens > 0 for tokens in view.values())
        # Draining past the estimated completions empties the view.
        state.drain(1e9)
        assert state.in_flight() == {}
