"""Fast-engine parity: event-point batch stepping must not move any number.

:class:`~repro.serving.fast_engine.FastServingEngine` advances all decode
steps between event points in one vectorised jump, so every metric of its
:class:`~repro.api.report.RunReport` must match the scalar
:class:`~repro.serving.engine.ServingEngine` to 1e-9 -- on every shipped
example spec (lifecycle preemption and prefix-cache runs included) and on a
seeded sweep of randomized configurations crossing admission x preemption
(priority-aware policies and the starvation guard included) x prefill x
prefix-cache x allocator x stride x router x SLO tiers.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, run
from repro.api.spec import apply_override

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_DIR = REPO_ROOT / "examples" / "specs"
SPEC_PATHS = sorted(SPEC_DIR.glob("*.json"))

#: Keys that legitimately differ between the two engine modes.
MODE_KEYS = ("spec", "spec_hash", "engine_mode")


def run_report_dict(spec_data: dict, mode: str) -> dict:
    data = json.loads(json.dumps(spec_data))
    apply_override(data, "engine.mode", mode)
    report = run(ExperimentSpec.from_dict(data)).to_dict()
    for key in MODE_KEYS:
        report.pop(key, None)
    return report


def assert_close(scalar, fast, path: str = "report") -> None:
    """Recursive equality: exact for non-floats, abs/rel 1e-9 for floats."""
    if isinstance(scalar, dict):
        assert isinstance(fast, dict) and scalar.keys() == fast.keys(), path
        for key in scalar:
            assert_close(scalar[key], fast[key], f"{path}.{key}")
    elif isinstance(scalar, (list, tuple)):
        assert len(scalar) == len(fast), path
        for index, (left, right) in enumerate(zip(scalar, fast, strict=True)):
            assert_close(left, right, f"{path}[{index}]")
    elif isinstance(scalar, float) and not isinstance(scalar, bool):
        assert fast == pytest.approx(scalar, rel=1e-9, abs=1e-9), path
    else:
        assert scalar == fast, path


@pytest.mark.parametrize("spec_path", SPEC_PATHS, ids=lambda p: p.stem)
def test_example_spec_parity(spec_path):
    spec_data = json.loads(spec_path.read_text())
    scalar = run_report_dict(spec_data, "scalar")
    fast = run_report_dict(spec_data, "fast")
    assert_close(scalar, fast)


def test_example_specs_cover_lifecycle_and_prefix_cache():
    """The parity sweep above must include preemption and prefix-cache runs."""
    names = {path.stem for path in SPEC_PATHS}
    assert "preemption_evict_lru" in names
    assert "multi_turn_prefix_cache" in names


def test_fast_mode_deterministic():
    spec_data = json.loads((SPEC_DIR / "xpu_only_qmsum.json").read_text())
    first = run_report_dict(spec_data, "fast")
    second = run_report_dict(spec_data, "fast")
    assert first == second


def test_engine_mode_recorded_in_report():
    spec_data = json.loads((SPEC_DIR / "pim_only_qmsum.json").read_text())
    data = json.loads(json.dumps(spec_data))
    apply_override(data, "engine.mode", "fast")
    report = run(ExperimentSpec.from_dict(data))
    assert report.engine_mode == "fast"
    assert report.to_dict()["engine_mode"] == "fast"


# ---------------------------------------------------------------------------
# Randomized configuration sweep
# ---------------------------------------------------------------------------


def _random_spec_dict(rng: random.Random) -> dict:
    """One small randomized configuration crossing the engine's feature axes."""
    source = rng.choice(["synthetic", "dataset", "multi-turn"])
    trace: dict = {"source": source, "num_requests": rng.choice([6, 10, 16])}
    if source == "synthetic":
        trace["prompt_tokens"] = rng.choice([128, 256, 1024])
        trace["output_tokens"] = rng.choice([8, 24, 48])
        if rng.random() < 0.5:
            trace["heavy_every"] = 3
            trace["heavy_prompt_tokens"] = 4096
    elif source == "dataset":
        trace["dataset"] = "qmsum"
        trace["output_tokens"] = rng.choice([8, 24])
    else:
        trace["num_sessions"] = 3
        trace["turns_per_session"] = 3
        trace["followup_tokens"] = 32
        trace["output_tokens"] = rng.choice([8, 16])
        if rng.random() < 0.5:
            trace["turn_gap_s"] = 0.25
    if rng.random() < 0.6:
        trace["arrival"] = "poisson"
        trace["rate_rps"] = rng.choice([20.0, 200.0, 2000.0])
    if source != "multi-turn" and rng.random() < 0.3:
        trace["num_sessions"] = 2
    admission = rng.choice(["fcfs", "capacity-aware", "priority"])
    tiers: list[dict] | None = None
    if rng.random() < 0.5:
        premium: dict = {"name": "premium", "priority": 5, "share": rng.choice([0.25, 0.5])}
        if rng.random() < 0.5:
            premium["ttft_deadline_s"] = 0.5
            premium["tpot_deadline_s"] = rng.choice([0.01, 0.25])
        tiers = [premium]
        if source == "multi-turn" and rng.random() < 0.5:
            tiers.append({"name": "vip", "priority": 9, "sessions": [0]})
        if rng.random() < 0.7:
            tiers.append({"name": "best-effort"})
    elif admission == "priority":
        trace["priority_every"] = 2

    data: dict = {
        "name": "fast-parity-random",
        "model": {"name": "LLM-7B-32K"},
        "system": {"kind": rng.choice(["pim-only", "xpu-only", "xpu-pim"])},
        "allocator": {"mode": rng.choice(["auto", "static", "paged"])},
        "admission": {
            "policy": admission,
            "max_batch_size": rng.choice([None, 4, 8]),
        },
        "trace": trace,
        "seed": rng.randrange(1000),
        "step_stride": rng.choice([1, 4, 16]),
    }
    if tiers is not None:
        data["tiers"] = tiers
    if rng.random() < 0.5:
        data["preemption"] = {
            "policy": rng.choice(
                [
                    "evict-lru",
                    "evict-largest",
                    "evict-youngest",
                    "evict-priority-lru",
                    "evict-priority-largest",
                    "evict-priority-youngest",
                ]
            ),
            "mode": rng.choice(["swap", "recompute"]),
        }
        if rng.random() < 0.5:
            data["preemption"]["starvation_limit"] = rng.choice([1, 3])
    prefill = rng.choice(["none", "blocking", "chunked"])
    if prefill != "none":
        data["prefill"] = {"mode": prefill, "chunk_tokens": rng.choice([256, 512])}
    if rng.random() < 0.4:
        data["prefix_cache"] = {"enabled": True}
        trace.setdefault("num_sessions", 2)
    if rng.random() < 0.3:
        data["latency_cache_bucket"] = 512
    if rng.random() < 0.3:
        data["router"] = {
            "replicas": 2,
            "policy": rng.choice(["round-robin", "capacity-aware", "session-affinity"]),
        }
    return data


@pytest.mark.parametrize("case_seed", range(20))
def test_randomized_config_parity(case_seed):
    """Full RunReport parity on a seeded random spec; errors must match too."""
    rng = random.Random(20260 + case_seed)
    spec_data = _random_spec_dict(rng)
    try:
        scalar = run_report_dict(spec_data, "scalar")
        scalar_error = None
    except Exception as error:  # noqa: BLE001 - comparing failure surfaces
        scalar, scalar_error = None, error
    try:
        fast = run_report_dict(spec_data, "fast")
        fast_error = None
    except Exception as error:  # noqa: BLE001
        fast, fast_error = None, error

    if scalar_error is not None or fast_error is not None:
        assert type(scalar_error) is type(fast_error), (scalar_error, fast_error)
        assert str(scalar_error) == str(fast_error)
    else:
        assert_close(scalar, fast)
