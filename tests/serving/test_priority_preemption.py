"""Priority-aware preemption policies and the cross-tier anti-starvation guard."""

import pytest

from repro.api import ExperimentSpec, TierSpec, run
from repro.api.spec import PreemptionSpec, SystemSpec, TraceSpec
from repro.serving import (
    EvictLRU,
    EvictPriorityLargest,
    EvictPriorityLRU,
    EvictPriorityYoungest,
    PreemptionCandidate,
    PreemptionConfig,
    serve,
)
from repro.workloads.traces import Request, RequestTrace
from tests.serving.test_preemption import TinyPagedSystem


def candidate(request_id, priority=0, preemptions=0, **kwargs):
    defaults = dict(context_tokens=10, admitted_s=0.0, last_decode_s=0.0)
    defaults.update(kwargs)
    return PreemptionCandidate(
        request_id=request_id, priority=priority, preemptions=preemptions, **defaults
    )


class TestPriorityPolicySelection:
    CANDIDATES = (
        candidate(0, priority=5, context_tokens=99, admitted_s=0.0, last_decode_s=0.0),
        candidate(1, priority=0, context_tokens=10, admitted_s=1.0, last_decode_s=3.0),
        candidate(2, priority=0, context_tokens=50, admitted_s=2.0, last_decode_s=1.0),
    )

    def test_all_prefer_the_lowest_priority_class(self):
        # Candidate 0 is by every base discipline the natural victim
        # (largest, least recent decode, earliest admitted) -- but it is
        # premium, so every priority-aware policy must spare it.
        for policy in (
            EvictPriorityLRU(),
            EvictPriorityLargest(),
            EvictPriorityYoungest(),
        ):
            assert policy.select(self.CANDIDATES) != 0

    def test_base_discipline_breaks_ties_inside_the_class(self):
        assert EvictPriorityLRU().select(self.CANDIDATES) == 2  # least recent decode
        assert EvictPriorityLargest().select(self.CANDIDATES) == 2  # most context
        assert EvictPriorityYoungest().select(self.CANDIDATES) == 2  # latest admitted

    def test_empty_candidates_refuse(self):
        for policy in (
            EvictPriorityLRU(),
            EvictPriorityLargest(),
            EvictPriorityYoungest(),
        ):
            assert policy.select(()) is None

    def test_uniform_priorities_match_the_blind_policies(self):
        # With a flat trace the priority-aware variants degrade to their
        # blind counterparts, so untiered runs keep identical victims.
        flat = tuple(
            candidate(i, admitted_s=float(i), last_decode_s=float(3 - i))
            for i in range(4)
        )
        assert EvictPriorityLRU().select(flat) == EvictLRU().select(flat)

    def test_registered_in_the_preemption_registry(self):
        from repro.api.registry import PREEMPTION_POLICIES

        for name in (
            "evict-priority-lru",
            "evict-priority-largest",
            "evict-priority-youngest",
        ):
            assert name in PREEMPTION_POLICIES.names()


class TestStarvationGuard:
    def test_eligible_passthrough_without_limit(self):
        config = PreemptionConfig(policy=EvictPriorityLRU())
        candidates = (candidate(0, preemptions=99),)
        assert config.eligible(candidates) is candidates

    def test_eligible_withholds_over_limit_candidates(self):
        config = PreemptionConfig(policy=EvictPriorityLRU(), starvation_limit=2)
        fresh = candidate(0, preemptions=1)
        beaten = candidate(1, preemptions=2)
        assert list(config.eligible((fresh, beaten))) == [fresh]

    def test_eligible_falls_back_when_everyone_is_over_limit(self):
        # A grow must never fail purely because of the guard.
        config = PreemptionConfig(policy=EvictPriorityLRU(), starvation_limit=1)
        beaten = (candidate(0, preemptions=1), candidate(1, preemptions=3))
        assert list(config.eligible(beaten)) == list(beaten)

    def test_invalid_limits_rejected(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValueError, match="starvation_limit"):
                PreemptionConfig(policy=EvictPriorityLRU(), starvation_limit=bad)


class _BullyPolicy:
    """Always beats the lowest request id it is offered (worst-case fairness)."""

    name = "evict-lru"  # masquerade as a registered name for the engine

    def select(self, candidates):
        if not candidates:
            return None
        return min(candidate.request_id for candidate in candidates)


class TestEngineStarvationGuard:
    # Capacity for three resident 12-token requests, so the policy sees
    # multi-candidate lists and the guard has victims to choose between.
    def system(self):
        from tests.serving.test_preemption import CHUNK

        return TinyPagedSystem(kv_capacity_bytes=24 * CHUNK)

    def pressure_trace(self, n=8):
        return RequestTrace(
            dataset="pressure",
            requests=tuple(
                Request(request_id=index, prompt_tokens=2, output_tokens=10)
                for index in range(n)
            ),
        )

    def run_bully(self, limit):
        result = serve(
            self.system(),
            self.pressure_trace(),
            preemption=PreemptionConfig(policy=_BullyPolicy(), starvation_limit=limit),
        )
        return {record.request_id: record.preemptions for record in result.request_records}

    def test_guard_redistributes_a_concentrating_policy(self):
        unguarded = self.run_bully(None)
        guarded = self.run_bully(1)
        # The guard withholds already-beaten victims, so the bully must
        # spread its evictions over strictly more requests without beating
        # any single request harder.
        assert max(guarded.values()) <= max(unguarded.values())
        assert len([c for c in guarded.values() if c > 0]) > len(
            [c for c in unguarded.values() if c > 0]
        )

    def test_engine_threads_preemption_counts_to_the_policy(self):
        def offers(limit):
            seen: list[tuple[int, ...]] = []

            class Recorder(_BullyPolicy):
                def select(self, candidates):
                    seen.append(tuple(c.preemptions for c in candidates))
                    return super().select(candidates)

            serve(
                self.system(),
                self.pressure_trace(),
                preemption=PreemptionConfig(policy=Recorder(), starvation_limit=limit),
            )
            return seen

        def mixed(counts):
            return len({count >= 1 for count in counts}) > 1

        # Without the guard the policy sees fresh and already-beaten
        # victims side by side (proving counts are threaded through)...
        assert any(mixed(counts) for counts in offers(None))
        # ...and with limit=1 such mixed lists never reach the policy: the
        # beaten candidates are withheld while fresh ones remain, and only
        # the all-beaten fallback offers them again.
        assert not any(mixed(counts) for counts in offers(1))


def tiered_pressure_spec(policy, limit=None, num_requests=18):
    return ExperimentSpec(
        name=f"priority-pressure-{policy}",
        system=SystemSpec(kind="pim-only", num_modules=1),
        trace=TraceSpec(
            source="synthetic",
            num_requests=num_requests,
            prompt_tokens=256,
            output_tokens=512,
        ),
        tiers=(
            TierSpec(
                name="premium",
                priority=5,
                share=0.25,
                ttft_deadline_s=0.5,
                tpot_deadline_s=0.035,
            ),
            TierSpec(name="best-effort"),
        ),
        preemption=PreemptionSpec(
            policy=policy, mode="swap", swap_bandwidth_gbps=64.0, starvation_limit=limit
        ),
        seed=5,
        step_stride=4,
    )


class TestPremiumProtection:
    def test_priority_aware_policy_spares_premium_requests(self):
        blind = run(tiered_pressure_spec("evict-lru"))
        aware = run(tiered_pressure_spec("evict-priority-lru"))
        # Equal load, equal completed work.
        assert aware.requests_served == blind.requests_served
        assert aware.total_output_tokens == blind.total_output_tokens
        # Blind LRU pages premium out with everyone else; the tier-aware
        # policy shifts that pressure onto best-effort entirely.
        assert blind.tier_report("premium").preemptions > 0
        assert aware.tier_report("premium").preemptions == 0
        assert (
            aware.tier_report("premium").goodput
            > blind.tier_report("premium").goodput
        )

    def test_premium_flood_does_not_zero_best_effort_goodput(self):
        # The satellite scenario: premium floods 3/4 of a saturated module.
        # With the fairness knob on, best-effort must still get work done.
        spec = ExperimentSpec(
            name="premium-flood",
            system=SystemSpec(kind="pim-only", num_modules=1),
            trace=TraceSpec(
                source="synthetic",
                num_requests=24,
                prompt_tokens=256,
                output_tokens=512,
            ),
            tiers=(
                TierSpec(name="premium", priority=5, share=0.75),
                TierSpec(name="best-effort"),
            ),
            preemption=PreemptionSpec(
                policy="evict-priority-lru",
                mode="swap",
                swap_bandwidth_gbps=64.0,
                starvation_limit=2,
            ),
            seed=5,
            step_stride=4,
        )
        report = run(spec)
        best_effort = report.tier_report("best-effort")
        assert best_effort.preemptions > 0  # the flood really pressures the tier
        assert best_effort.goodput > 0.0
        assert report.tier_report("premium").goodput > 0.0
