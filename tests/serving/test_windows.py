"""Edge-case tests for windowed per-interval serving metrics."""

import math

import pytest

from repro.serving import LatencyStats, RequestRecord, windowed_stats


def _record(
    request_id: int,
    arrival_s: float,
    first_token_s: float | None = None,
    finish_s: float | None = None,
    ttft_deadline_s: float | None = None,
) -> RequestRecord:
    record = RequestRecord(
        request_id=request_id,
        prompt_tokens=32,
        output_tokens=4,
        arrival_s=arrival_s,
        ttft_deadline_s=ttft_deadline_s,
    )
    record.admitted_s = arrival_s
    if first_token_s is not None:
        record.first_token_s = first_token_s
        record.generated = 4
    if finish_s is not None:
        record.finish_s = finish_s
    return record


class TestWindowedStats:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window_s"):
            windowed_stats([_record(0, 0.0)], 0.0)
        with pytest.raises(ValueError, match="window_s"):
            windowed_stats([_record(0, 0.0)], math.inf)

    def test_no_records_yields_no_windows(self):
        assert windowed_stats([], 10.0) == ()

    def test_empty_middle_windows_are_kept(self):
        # Arrivals in window 0 and window 3 only: the quiet windows 1 and
        # 2 must still appear, contiguous, with vacuous attainment.
        records = [
            _record(0, 1.0, first_token_s=1.5, finish_s=2.0),
            _record(1, 31.0, first_token_s=31.5, finish_s=32.0),
        ]
        windows = windowed_stats(records, 10.0)
        assert len(windows) == 4
        assert [w.start_s for w in windows] == [0.0, 10.0, 20.0, 30.0]
        assert [w.arrivals for w in windows] == [1, 0, 0, 1]
        for quiet in windows[1:3]:
            assert quiet.finished == 0
            assert quiet.ttft_attainment == 1.0
            assert quiet.tpot_attainment == 1.0
            assert quiet.goodput_fraction == 1.0

    def test_boundary_arrival_belongs_to_later_window(self):
        records = [
            _record(0, 9.999, first_token_s=10.5, finish_s=11.0),
            _record(1, 10.0, first_token_s=10.5, finish_s=11.0),
        ]
        windows = windowed_stats(records, 10.0)
        assert [w.arrivals for w in windows] == [1, 1]

    def test_unserved_requests_count_against_their_window(self):
        # A request with a TTFT deadline that never got a first token is
        # an SLO miss and not part of goodput; a deadline-free unserved
        # request misses goodput (not finished) but attains vacuously.
        records = [
            _record(0, 1.0, ttft_deadline_s=0.5),  # never served, has deadline
            _record(1, 2.0),  # never served, no deadline
            _record(2, 3.0, first_token_s=3.2, finish_s=3.5, ttft_deadline_s=0.5),
        ]
        (window,) = windowed_stats(records, 10.0)
        assert window.arrivals == 3
        assert window.finished == 1
        assert window.ttft_attained == 2  # record 1 (vacuous) + record 2
        assert window.goodput_requests == 1  # only the finished record 2
        assert window.goodput_fraction == pytest.approx(1 / 3)

    def test_single_window_matches_whole_run_stats(self):
        records = [
            _record(i, 0.5 * i, first_token_s=0.5 * i + 0.2, finish_s=0.5 * i + 1.0)
            for i in range(8)
        ]
        (window,) = windowed_stats(records, 100.0)
        assert window.latency == LatencyStats.from_records(records)
        assert window.arrivals == 8
        assert window.finished == 8
        assert window.goodput_fraction == 1.0
