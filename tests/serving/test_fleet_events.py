"""Unit tests for the fleet timeline: failures, recovery, autoscaling."""

from dataclasses import dataclass

import pytest

from repro.serving import (
    SCALE_DOWN,
    SCALE_UP,
    DynamicFleetRouter,
    FleetEvent,
    ReactiveAutoscaler,
    ReplicaRouter,
    RoundRobinRouting,
    ServingEngine,
    StepResult,
)
from repro.workloads.traces import Request, RequestTrace


@dataclass
class ToySystem:
    """Constant-latency decode system (static allocation; see test_router)."""

    kv_capacity_bytes: int = 1_000_000
    kv_bytes_per_token: int = 1
    max_context_tokens: int = 4096
    step_seconds: float = 0.01

    @property
    def dynamic_memory(self) -> bool:
        return False

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths) -> StepResult:
        if not context_lengths:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        return StepResult(seconds=self.step_seconds, pim_utilization=0.0)


def toy_engine() -> ServingEngine:
    return ServingEngine(system=ToySystem())


def make_trace(num_requests=8, prompt=64, output=4, gap_s=0.0):
    requests = tuple(
        Request(
            request_id=index,
            prompt_tokens=prompt,
            output_tokens=output,
            arrival_s=index * gap_s,
        )
        for index in range(num_requests)
    )
    return RequestTrace(dataset="toy", requests=requests)


class TestConstruction:
    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError, match="initial_replicas"):
            DynamicFleetRouter(toy_engine, initial_replicas=0)

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet event kind"):
            DynamicFleetRouter(
                toy_engine,
                initial_replicas=2,
                events=[FleetEvent(at_s=1.0, kind="replica_sideways", replica=0)],
            )

    def test_event_replica_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            DynamicFleetRouter(
                toy_engine,
                initial_replicas=2,
                events=[FleetEvent(at_s=1.0, kind="replica_down", replica=2)],
            )


class TestStaticEquivalence:
    def test_no_events_matches_static_router(self):
        # With no events and no autoscaler the timeline must reproduce the
        # static ReplicaRouter bit for bit: same dispatch order, same
        # per-replica sub-traces, same merged latency stats.
        trace = make_trace(num_requests=16, output=6, gap_s=0.05)
        static = ReplicaRouter(
            replicas=[toy_engine(), toy_engine()], policy=RoundRobinRouting()
        ).run(trace, system_name="toy")
        dynamic = DynamicFleetRouter(toy_engine, initial_replicas=2).run(
            trace, system_name="toy"
        )
        assert dynamic.fleet.latency == static.latency
        assert [r.request_id for r in dynamic.fleet.request_records] == [
            r.request_id for r in static.request_records
        ]
        assert dynamic.failures == 0
        assert dynamic.restarts == 0
        assert dynamic.kv_lost_tokens == 0
        assert dynamic.dropped == 0
        assert all(r.restarts == 0 for r in dynamic.fleet.request_records)
        assert [segment.reason for segment in dynamic.segments] == ["run-end"] * 2
        # Both run-end segments bill from t=0 to the common fleet end.
        ends = {segment.end_s for segment in dynamic.segments}
        assert len(ends) == 1
        assert dynamic.replica_seconds == pytest.approx(2 * ends.pop())

    def test_empty_trace(self):
        result = DynamicFleetRouter(toy_engine, initial_replicas=2).run(
            RequestTrace(dataset="toy", requests=())
        )
        assert result.fleet.request_records == ()
        assert result.failures == 0
        assert result.decisions == ()
        assert result.replica_seconds == 0.0
        assert result.peak_replicas == 2


class TestFailure:
    def test_victims_redispatched_with_original_arrival(self):
        # 6 requests at t=0, est. service 1s each; round-robin puts
        # 0/2/4 on replica 0.  Failing it at t=0.5 must re-dispatch all
        # three to replica 1, charge their reserved KV, and stitch the
        # records back to the t=0 arrival so latency spans the stall.
        trace = make_trace(num_requests=6, prompt=64, output=100)
        router = DynamicFleetRouter(
            toy_engine,
            initial_replicas=2,
            events=[FleetEvent(at_s=0.5, kind="replica_down", replica=0)],
        )
        result = router.run(trace)
        assert result.failures == 1
        assert result.restarts == 3
        # Static allocation reserves the full final context per request.
        assert result.kv_lost_tokens == 3 * (64 + 100)
        records = {r.request_id: r for r in result.fleet.request_records}
        assert len(records) == 6
        for victim_id in (0, 2, 4):
            assert records[victim_id].restarts == 1
            assert records[victim_id].arrival_s == pytest.approx(0.0)
        for survivor_id in (1, 3, 5):
            assert records[survivor_id].restarts == 0
        # Victims restart cold at 0.5 on the surviving replica, so their
        # end-to-end latency must exceed any same-size survivor's.
        slowest_survivor = max(records[i].latency_s for i in (1, 3, 5))
        for victim_id in (0, 2, 4):
            assert records[victim_id].latency_s > slowest_survivor
        # The failed segment bills exactly until the event and serves
        # nothing (all of its work was re-dispatched).
        failed = [s for s in result.segments if s.reason == "failure"]
        assert len(failed) == 1
        assert failed[0].slot == 0
        assert failed[0].end_s == pytest.approx(0.5)
        assert failed[0].requests_served == 0

    def test_recovery_opens_fresh_segment(self):
        trace = make_trace(num_requests=12, output=30, gap_s=0.1)
        router = DynamicFleetRouter(
            toy_engine,
            initial_replicas=2,
            events=[
                FleetEvent(at_s=0.35, kind="replica_down", replica=0),
                FleetEvent(at_s=0.6, kind="replica_up", replica=0),
            ],
        )
        result = router.run(trace)
        assert result.failures == 1
        slot0 = [s for s in result.segments if s.slot == 0]
        assert [s.reason for s in slot0] == ["failure", "run-end"]
        assert slot0[1].start_s == pytest.approx(0.6)
        assert slot0[1].requests_served > 0  # arrivals after 0.6 land here
        assert len(result.fleet.request_records) == 12
        assert result.dropped == 0

    def test_no_accepting_replica_drops(self):
        # Single replica downed at t=0.05: the in-flight victim and every
        # later arrival have nowhere to go.
        trace = make_trace(num_requests=4, output=100, gap_s=0.1)
        router = DynamicFleetRouter(
            toy_engine,
            initial_replicas=1,
            events=[FleetEvent(at_s=0.05, kind="replica_down", replica=0)],
        )
        result = router.run(trace)
        assert result.dropped == 4
        assert result.fleet.request_records == ()
        assert result.failures == 1


class TestAutoscaling:
    def test_scale_up_under_load(self):
        # One replica, heavy sustained load: the queue-depth signal must
        # grow the fleet to max_replicas and the new slots must serve
        # traffic once their cold start elapses.
        trace = make_trace(num_requests=60, output=50, gap_s=0.02)
        scaler = ReactiveAutoscaler(
            signal="queue-depth",
            scale_up_threshold=2.0,
            scale_down_threshold=0.5,
            min_replicas=1,
            max_replicas=3,
            interval_s=0.05,
            cooldown_s=0.0,
            cold_start_s=0.1,
        )
        result = DynamicFleetRouter(
            toy_engine, initial_replicas=1, autoscaler=scaler
        ).run(trace)
        ups = [d for d in result.decisions if d.action == SCALE_UP]
        assert len(ups) == 2  # 1 -> 3 replicas, then capped at max
        assert result.peak_replicas == 3
        assert all(d.signal_value > 2.0 for d in ups)
        scaled_slots = {s.slot for s in result.segments if s.slot >= 1}
        assert scaled_slots == {1, 2}
        assert sum(s.requests_served for s in result.segments if s.slot >= 1) > 0
        assert len(result.fleet.request_records) == 60

    def test_scale_down_drains_idle_replicas(self):
        # Three replicas, trickle load: the controller must drain down to
        # min_replicas, and each drained segment must be billed as such.
        trace = make_trace(num_requests=20, output=5, gap_s=0.1)
        scaler = ReactiveAutoscaler(
            signal="queue-depth",
            scale_up_threshold=10.0,
            scale_down_threshold=0.5,
            min_replicas=1,
            max_replicas=4,
            interval_s=0.1,
            cooldown_s=0.0,
            cold_start_s=0.1,
        )
        result = DynamicFleetRouter(
            toy_engine, initial_replicas=3, autoscaler=scaler
        ).run(trace)
        downs = [d for d in result.decisions if d.action == SCALE_DOWN]
        assert len(downs) == 2  # 3 -> 1, floored at min_replicas
        assert all(d.action == SCALE_DOWN for d in result.decisions)
        drained = [s for s in result.segments if s.reason == "drain"]
        assert len(drained) == 2
        assert len(result.fleet.request_records) == 20
        assert result.dropped == 0

    def test_cold_start_delays_accepting(self):
        # Cold start longer than the arrival span: the scaled-up replica
        # is billed but never serves a request.
        trace = make_trace(num_requests=20, output=20, gap_s=0.01)
        scaler = ReactiveAutoscaler(
            signal="queue-depth",
            scale_up_threshold=0.1,
            scale_down_threshold=0.05,
            min_replicas=1,
            max_replicas=2,
            interval_s=0.05,
            cooldown_s=0.0,
            cold_start_s=0.5,
        )
        result = DynamicFleetRouter(
            toy_engine, initial_replicas=1, autoscaler=scaler
        ).run(trace)
        assert result.peak_replicas == 2
        cold = [s for s in result.segments if s.slot == 1]
        assert len(cold) == 1
        assert cold[0].requests_served == 0
        assert cold[0].end_s > cold[0].start_s  # provisioned time is billed

    def test_ttft_ewma_signal_scales_up(self):
        trace = make_trace(num_requests=60, output=50, gap_s=0.02)
        scaler = ReactiveAutoscaler(
            signal="ttft-ewma",
            scale_up_threshold=0.12,
            scale_down_threshold=0.05,
            min_replicas=1,
            max_replicas=3,
            interval_s=0.05,
            cooldown_s=0.0,
            cold_start_s=0.1,
            ewma_alpha=0.5,
        )
        result = DynamicFleetRouter(
            toy_engine, initial_replicas=1, autoscaler=scaler
        ).run(trace)
        ups = [d for d in result.decisions if d.action == SCALE_UP]
        assert ups, "queue pressure must drive the TTFT estimate past 0.12s"
        assert all(d.signal_value > 0.12 for d in ups)


class TestReactiveAutoscaler:
    def test_validation(self):
        with pytest.raises(ValueError, match="signal"):
            ReactiveAutoscaler(signal="vibes")
        with pytest.raises(ValueError, match="scale_up_threshold"):
            ReactiveAutoscaler(scale_up_threshold=0.0)
        with pytest.raises(ValueError, match="scale_down_threshold"):
            ReactiveAutoscaler(scale_down_threshold=-1.0)
        with pytest.raises(ValueError, match="below scale_up_threshold"):
            ReactiveAutoscaler(scale_up_threshold=2.0, scale_down_threshold=2.0)
        with pytest.raises(ValueError, match="min_replicas"):
            ReactiveAutoscaler(min_replicas=0)
        with pytest.raises(ValueError, match="min_replicas"):
            ReactiveAutoscaler(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError, match="interval_s"):
            ReactiveAutoscaler(interval_s=0.0)
        with pytest.raises(ValueError, match="cooldown_s"):
            ReactiveAutoscaler(cooldown_s=-1.0)
        with pytest.raises(ValueError, match="cold_start_s"):
            ReactiveAutoscaler(cold_start_s=-1.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            ReactiveAutoscaler(ewma_alpha=1.5)

    def test_scale_up_bounded_by_max(self):
        scaler = ReactiveAutoscaler(
            scale_up_threshold=2.0, scale_down_threshold=0.5, max_replicas=2, cooldown_s=0.0
        )
        assert scaler.decide(0.0, 1, 1, [5]) == SCALE_UP
        assert scaler.decide(5.0, 2, 2, [5, 5]) is None  # at max
        assert scaler.decisions[0].replicas_before == 1
        assert scaler.decisions[0].replicas_after == 2
        assert scaler.decisions[0].signal_value == pytest.approx(5.0)

    def test_scale_down_floored_at_min(self):
        scaler = ReactiveAutoscaler(
            scale_up_threshold=4.0, scale_down_threshold=1.0, min_replicas=2, cooldown_s=0.0
        )
        assert scaler.decide(0.0, 3, 3, [0, 0, 0]) == SCALE_DOWN
        assert scaler.decide(5.0, 2, 2, [0, 0]) is None  # at min

    def test_cooldown_gates_decisions(self):
        scaler = ReactiveAutoscaler(
            scale_up_threshold=2.0, scale_down_threshold=0.5, cooldown_s=10.0
        )
        assert scaler.decide(0.0, 1, 1, [5]) == SCALE_UP
        assert scaler.decide(5.0, 2, 2, [5, 5]) is None  # cooling down
        assert scaler.decide(10.0, 2, 2, [5, 5]) == SCALE_UP

    def test_queue_depth_signal_is_mean(self):
        scaler = ReactiveAutoscaler()
        assert scaler.current_signal([1, 2, 3]) == pytest.approx(2.0)
        assert scaler.current_signal([]) == 0.0

    def test_ttft_ewma_folding(self):
        scaler = ReactiveAutoscaler(signal="ttft-ewma", ewma_alpha=0.5)
        scaler.observe_ttft(1.0)
        assert scaler.current_signal([]) == pytest.approx(1.0)
        scaler.observe_ttft(3.0)
        assert scaler.current_signal([]) == pytest.approx(2.0)
        scaler.reset()
        assert scaler.current_signal([]) == 0.0
        assert scaler.decisions == []
