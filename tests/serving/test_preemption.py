"""Engine-level tests for preemption policies and the lifecycle contract."""

from dataclasses import dataclass, replace

import pytest

from repro.serving import (
    EvictLargest,
    EvictLRU,
    EvictYoungest,
    FCFSAdmission,
    NoPreemption,
    PreemptionCandidate,
    PreemptionConfig,
    PreemptionCostModel,
    ServingEngine,
    serve,
)
from repro.serving.interfaces import StepResult
from repro.workloads.traces import Request, RequestTrace

CHUNK = 1024 * 1024  # engine allocators use the paper's 1MB chunks


@dataclass
class TinyPagedSystem:
    """Constant-latency paged-memory system with a tiny KV capacity.

    Two tokens per 1MB chunk, eight chunks total by default: four requests
    growing to 16 tokens each (8 chunks) oversubscribe the cache 4x.
    """

    kv_capacity_bytes: int = 8 * CHUNK
    kv_bytes_per_token: int = CHUNK // 2
    max_context_tokens: int = 4096
    step_seconds: float = 0.01

    @property
    def dynamic_memory(self) -> bool:
        return True

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths) -> StepResult:
        if not context_lengths:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        return StepResult(seconds=self.step_seconds, pim_utilization=0.0)


def pressure_trace(num_requests=4, prompt=2, output=14):
    return RequestTrace(
        dataset="pressure",
        requests=tuple(
            Request(request_id=index, prompt_tokens=prompt, output_tokens=output)
            for index in range(num_requests)
        ),
    )


def evict_lru(mode="recompute", **kwargs):
    return PreemptionConfig(
        policy=EvictLRU(), cost=PreemptionCostModel(mode=mode, **kwargs)
    )


class TestPolicySelection:
    CANDIDATES = (
        PreemptionCandidate(request_id=0, context_tokens=10, admitted_s=0.0, last_decode_s=3.0),
        PreemptionCandidate(request_id=1, context_tokens=99, admitted_s=1.0, last_decode_s=1.0),
        PreemptionCandidate(request_id=2, context_tokens=50, admitted_s=2.0, last_decode_s=2.0),
    )

    def test_none_never_selects(self):
        assert NoPreemption().select(self.CANDIDATES) is None
        assert NoPreemption().select(()) is None

    def test_lru_selects_least_recent_decoder(self):
        assert EvictLRU().select(self.CANDIDATES) == 1

    def test_largest_selects_most_context(self):
        assert EvictLargest().select(self.CANDIDATES) == 1

    def test_youngest_selects_latest_admitted(self):
        assert EvictYoungest().select(self.CANDIDATES) == 2

    def test_empty_candidates_refuse(self):
        for policy in (EvictLRU(), EvictLargest(), EvictYoungest()):
            assert policy.select(()) is None

    def test_lru_tie_breaks_by_admission_then_id(self):
        tied = (
            PreemptionCandidate(request_id=5, context_tokens=1, admitted_s=2.0, last_decode_s=1.0),
            PreemptionCandidate(request_id=3, context_tokens=1, admitted_s=1.0, last_decode_s=1.0),
        )
        assert EvictLRU().select(tied) == 3


class TestEnginePreemption:
    def test_evict_lru_completes_all_with_higher_concurrency_and_utilization(self):
        trace = pressure_trace()
        baseline = serve(TinyPagedSystem(), trace)
        preempting = serve(TinyPagedSystem(), trace, preemption=evict_lru())

        # The up-front-commit baseline serialises the four requests.
        assert baseline.peak_batch_size == 1
        assert baseline.preemptions == 0
        # The lifecycle contract admits everyone and preempts under
        # pressure -- every request still completes with every token.
        assert preempting.requests_served == 4
        assert preempting.total_output_tokens == baseline.total_output_tokens
        assert preempting.peak_batch_size > baseline.peak_batch_size
        assert (
            preempting.average_capacity_utilization
            > baseline.average_capacity_utilization
        )
        assert preempting.preemptions > 0
        assert preempting.preemption_policy == "evict-lru"
        assert preempting.requeue_delay_mean_s > 0.0

    def test_per_request_stall_and_preemption_counts_recorded(self):
        result = serve(TinyPagedSystem(), pressure_trace(), preemption=evict_lru())
        preempted_records = [r for r in result.request_records if r.preemptions]
        assert preempted_records, "capacity pressure must preempt someone"
        assert all(record.stall_s > 0.0 for record in preempted_records)
        assert sum(r.preemptions for r in result.request_records) == result.preemptions
        # Recompute mode re-prefills each victim's saved context.
        assert result.recompute_tokens == sum(
            r.recompute_tokens for r in result.request_records
        )
        assert result.recompute_tokens > 0

    def test_swap_cost_charges_the_clock(self):
        trace = pressure_trace()
        free = serve(TinyPagedSystem(), trace, preemption=evict_lru())
        paid = serve(
            TinyPagedSystem(),
            trace,
            preemption=evict_lru(mode="swap", swap_bandwidth_bytes_per_s=1e9),
        )
        assert free.preemption_overhead_s == 0.0  # recompute w/o prefill model
        assert paid.preemption_overhead_s > 0.0
        assert paid.recompute_tokens == 0  # swap preserves the KV cache
        assert paid.makespan_s > free.makespan_s
        assert paid.total_output_tokens == free.total_output_tokens

    def test_none_policy_config_matches_no_config_exactly(self):
        trace = pressure_trace()
        bare = serve(TinyPagedSystem(), trace)
        none = serve(
            TinyPagedSystem(),
            trace,
            preemption=PreemptionConfig(policy=NoPreemption()),
        )
        assert none.preemptions == 0
        for metric in (
            "total_output_tokens",
            "total_seconds",
            "steps",
            "peak_batch_size",
            "average_batch_size",
            "average_capacity_utilization",
            "requests_served",
            "makespan_s",
            "latency",
        ):
            assert getattr(none, metric) == getattr(bare, metric), metric

    def test_preempted_request_keeps_exact_token_budget(self):
        trace = pressure_trace(num_requests=3, prompt=4, output=12)
        result = serve(TinyPagedSystem(), trace, preemption=evict_lru())
        records = {record.request_id: record for record in result.request_records}
        for request in trace.requests:
            assert records[request.request_id].generated == request.output_tokens

    def test_impossible_request_still_dropped_or_raised(self):
        # A request whose final context exceeds *total* capacity can never
        # be saved by preemption: the lifecycle engine must keep the legacy
        # drop (skip-over) / raise (head-of-line) semantics.
        from repro.memory.static_alloc import AllocationError
        from repro.serving import CapacityAwareAdmission

        base = pressure_trace(num_requests=2)
        oversized = Request(request_id=99, prompt_tokens=2, output_tokens=100)
        trace = RequestTrace(dataset=base.dataset, requests=base.requests + (oversized,))
        result = serve(
            TinyPagedSystem(),
            trace,
            admission=CapacityAwareAdmission(),
            preemption=evict_lru(),
        )
        assert result.requests_dropped == 1
        assert result.metadata["dropped_request_ids"] == [99]
        assert result.requests_served == 2
        with pytest.raises(AllocationError):
            serve(
                TinyPagedSystem(),
                trace,
                admission=FCFSAdmission(),
                preemption=evict_lru(),
            )

    def test_max_batch_size_still_caps_concurrency(self):
        result = serve(
            TinyPagedSystem(),
            pressure_trace(num_requests=6),
            max_batch_size=2,
            preemption=evict_lru(),
        )
        assert result.peak_batch_size <= 2
        assert result.requests_served == 6

    def test_policies_disagree_on_victims_but_all_complete(self):
        trace = pressure_trace(num_requests=5, prompt=2, output=12)
        results = {}
        for policy in (EvictLRU(), EvictLargest(), EvictYoungest()):
            result = serve(
                TinyPagedSystem(),
                trace,
                preemption=PreemptionConfig(policy=policy),
            )
            assert result.requests_served == 5
            assert result.total_output_tokens == trace.total_output_tokens
            results[policy.name] = result.preemptions
        assert all(count > 0 for count in results.values())

    def test_lifecycle_admission_property(self):
        system = TinyPagedSystem()
        assert not ServingEngine(system=system).lifecycle_admission
        assert not ServingEngine(
            system=system, preemption=PreemptionConfig(policy=NoPreemption())
        ).lifecycle_admission
        assert ServingEngine(system=system, preemption=evict_lru()).lifecycle_admission


class TestPoissonArrivalsUnderPressure:
    def test_open_loop_trace_with_preemption_terminates_and_serves_all(self):
        requests = tuple(
            Request(request_id=index, prompt_tokens=2, output_tokens=10,
                    arrival_s=0.02 * index)
            for index in range(8)
        )
        trace = RequestTrace(dataset="open-loop", requests=requests)
        result = serve(TinyPagedSystem(), trace, preemption=evict_lru())
        assert result.requests_served == 8
        assert result.total_output_tokens == 80


class TestCostModelValidation:
    def test_invalid_modes_and_ranges_rejected(self):
        with pytest.raises(ValueError):
            PreemptionCostModel(mode="teleport")
        with pytest.raises(ValueError):
            PreemptionCostModel(swap_bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            PreemptionCostModel(recompute_per_token_s=-1.0)

    def test_recompute_uses_prefill_model_when_available(self):
        from repro.memory.lifecycle import PreemptedState
        from repro.serving import LinearPrefillModel

        cost = PreemptionCostModel(mode="recompute", recompute_per_token_s=0.5)
        state = PreemptedState(request_id=0, tokens=10, kv_bytes=100)
        assert cost.restore_seconds(state) == pytest.approx(5.0)
        model = LinearPrefillModel(per_token_s=0.1)
        assert cost.restore_seconds(state, model) == pytest.approx(1.0)
        assert cost.restore_recompute_tokens(state) == 10
        swap = PreemptionCostModel(mode="swap", swap_bandwidth_bytes_per_s=50.0)
        assert swap.evict_seconds(state) == pytest.approx(2.0)
        assert swap.restore_recompute_tokens(state) == 0


def test_replace_keeps_dataclass_semantics():
    # EngineResult gained preemption fields; dataclasses.replace must work
    # for downstream tooling that tweaks results.
    result = serve(TinyPagedSystem(), pressure_trace(), preemption=evict_lru())
    clone = replace(result, preemptions=0)
    assert clone.preemptions == 0
    assert clone.total_output_tokens == result.total_output_tokens
