"""Tests for DPA encoding and the instruction footprint model (Fig. 10)."""

import pytest

from repro.compiler.dpa_encoding import (
    dpa_instruction_footprint,
    encode_attention_loop,
    static_instruction_footprint,
)
from repro.pim.isa import PIMInstruction, PIMOpcode


class TestEncoding:
    def test_loop_wraps_body_with_dyn_instructions(self):
        body = (
            PIMInstruction(opcode=PIMOpcode.WR_INP),
            PIMInstruction(opcode=PIMOpcode.MAC),
            PIMInstruction(opcode=PIMOpcode.RD_OUT),
        )
        encoded = encode_attention_loop(body)
        opcodes = [instruction.opcode for instruction in encoded.instructions]
        assert opcodes[0] is PIMOpcode.DYN_LOOP
        assert PIMOpcode.DYN_MODI in opcodes
        assert encoded.body_instructions == 3
        assert encoded.encoded_bytes == 8 * len(encoded.instructions)

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            encode_attention_loop(())


class TestFootprint:
    def test_static_footprint_linear_in_context(self):
        assert static_instruction_footprint(64 * 1024) == 4 * static_instruction_footprint(16 * 1024)

    def test_dpa_footprint_context_independent(self):
        assert dpa_instruction_footprint(1024) == dpa_instruction_footprint(1024 * 1024)

    def test_footprint_scales_with_heads_and_layers(self):
        base = static_instruction_footprint(4096, kv_heads=1, layers=1)
        assert static_instruction_footprint(4096, kv_heads=8, layers=2) == 16 * base

    def test_fig10c_gap_at_1m_tokens(self):
        """At 1M tokens the static stream is ~100000x larger than DPA's."""
        static = static_instruction_footprint(1024 * 1024)
        dpa = dpa_instruction_footprint(1024 * 1024)
        assert static / dpa > 10_000

    def test_negative_context_rejected(self):
        with pytest.raises(ValueError):
            static_instruction_footprint(-1)
        with pytest.raises(ValueError):
            dpa_instruction_footprint(-1)
