"""Tests for the tensor IR and decoder graph builder."""

import pytest

from repro.compiler.ir import Graph, Operation, OpType, TensorType, build_decoder_graph


class TestTensorType:
    def test_element_and_byte_counts(self):
        tensor = TensorType((4, 128), dtype_bytes=2)
        assert tensor.num_elements == 512
        assert tensor.num_bytes == 1024

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            TensorType((0, 4))
        with pytest.raises(ValueError):
            TensorType((4,), dtype_bytes=0)


class TestGraph:
    def test_duplicate_values_and_ops_rejected(self):
        graph = Graph(name="g")
        graph.add_value("x", TensorType((1,)))
        with pytest.raises(ValueError):
            graph.add_value("x", TensorType((1,)))
        graph.add_operation(Operation(name="op", op_type=OpType.ELEMENTWISE, inputs=["x"], outputs=[]))
        with pytest.raises(ValueError):
            graph.add_operation(Operation(name="op", op_type=OpType.ELEMENTWISE))

    def test_undefined_values_rejected(self):
        graph = Graph(name="g")
        with pytest.raises(ValueError):
            graph.add_operation(Operation(name="op", op_type=OpType.MATMUL, inputs=["missing"]))

    def test_producer_consumer_lookup(self):
        graph = Graph(name="g")
        graph.add_value("a", TensorType((1,)))
        graph.add_value("b", TensorType((1,)))
        op = Operation(name="op", op_type=OpType.ELEMENTWISE, inputs=["a"], outputs=["b"])
        graph.add_operation(op)
        assert graph.producers("b") == [op]
        assert graph.consumers("a") == [op]
        with pytest.raises(KeyError):
            graph.operation("nope")


class TestDecoderGraph:
    def test_structure_matches_model(self, llm_7b_gqa):
        graph = build_decoder_graph(llm_7b_gqa, context_length=4096)
        matmuls = graph.operations_of_type(OpType.MATMUL)
        # QKV + out + gate + up + down = 5 FC matmuls, plus QK^T and SV per KV head.
        assert len(matmuls) == 5 + 2 * llm_7b_gqa.num_kv_heads
        softmaxes = graph.operations_of_type(OpType.SOFTMAX)
        assert len(softmaxes) == llm_7b_gqa.num_kv_heads

    def test_attention_ops_tagged_dynamic(self, llm_7b):
        graph = build_decoder_graph(llm_7b, context_length=1024)
        qkt = graph.operation("qkt_kv0")
        assert qkt.attr("dynamic_dim") == "context_length"
        assert qkt.role == "qkt"

    def test_kv_cache_shape_tracks_context(self, llm_7b):
        graph = build_decoder_graph(llm_7b, context_length=777)
        assert graph.values["kv_cache_k"].shape[0] == 777

    def test_invalid_context_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            build_decoder_graph(llm_7b, context_length=0)
