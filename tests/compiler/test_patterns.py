"""Tests for decoder pattern detection."""

from repro.compiler.ir import Operation, OpType, build_decoder_graph
from repro.compiler.patterns import (
    detect_attention_patterns,
    detect_fc_operations,
    is_pim_amenable,
)


class TestPatternDetection:
    def test_one_pattern_per_kv_head(self, llm_7b_gqa):
        graph = build_decoder_graph(llm_7b_gqa, 2048)
        patterns = detect_attention_patterns(graph)
        assert len(patterns) == llm_7b_gqa.num_kv_heads
        assert [pattern.kv_head for pattern in patterns] == list(range(llm_7b_gqa.num_kv_heads))

    def test_pattern_links_qkt_softmax_sv(self, llm_7b):
        graph = build_decoder_graph(llm_7b, 2048)
        pattern = detect_attention_patterns(graph)[0]
        assert pattern.qkt.role == "qkt"
        assert pattern.sv.role == "sv"
        assert pattern.softmax.op_type is OpType.SOFTMAX
        assert pattern.dynamic

    def test_group_size_propagated(self, llm_7b_gqa):
        graph = build_decoder_graph(llm_7b_gqa, 2048)
        pattern = detect_attention_patterns(graph)[0]
        assert pattern.group_size == llm_7b_gqa.gqa_group_size

    def test_fc_operations_detected(self, llm_7b):
        graph = build_decoder_graph(llm_7b, 2048)
        fc_ops = detect_fc_operations(graph)
        assert {op.name for op in fc_ops} == {"qkv_proj", "out_proj", "ffn_gate", "ffn_up", "ffn_down"}


class TestAmenability:
    def test_matmul_roles_are_amenable(self):
        for role in ("qkt", "sv", "fc"):
            op = Operation(name="x", op_type=OpType.MATMUL, attrs={"role": role})
            assert is_pim_amenable(op)

    def test_glue_ops_are_not_amenable(self):
        assert not is_pim_amenable(Operation(name="s", op_type=OpType.SOFTMAX))
        assert not is_pim_amenable(Operation(name="e", op_type=OpType.ELEMENTWISE))
        assert not is_pim_amenable(
            Operation(name="m", op_type=OpType.MATMUL, attrs={"role": "prefill"})
        )
