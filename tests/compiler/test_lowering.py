"""Tests for lowering to explicit PIM command / instruction streams."""

import pytest

from repro.compiler.ir import Operation, OpType
from repro.compiler.lowering import (
    expand_program_to_commands,
    instruction_stream_commands,
    lower_gemv_to_commands,
    lower_operator_to_instructions,
)
from repro.pim.config import PIMChannelConfig
from repro.pim.isa import PIMOpcode
from repro.pim.kernels import build_fc_gemv_program, caps_for_policy
from repro.pim.simulator import validate_stream


class TestGEMVLowering:
    def test_stream_respects_buffer_bounds(self, channel):
        caps = caps_for_policy(channel, "dcs")
        commands = lower_gemv_to_commands(512, 256, channel, caps)
        validate_stream(commands, channel)

    def test_command_ids_unique_and_ordered(self, channel):
        caps = caps_for_policy(channel, "dcs")
        commands = lower_gemv_to_commands(256, 256, channel, caps)
        ids = [command.cmd_id for command in commands]
        assert ids == list(range(len(ids)))

    def test_every_mac_reads_a_written_entry(self, channel):
        caps = caps_for_policy(channel, "static")
        commands = lower_gemv_to_commands(2048, 64, channel, caps)
        written: set[int] = set()
        for command in commands:
            if command.opcode is PIMOpcode.WR_INP:
                written.add(command.gbuf_idx)
            elif command.opcode is PIMOpcode.MAC:
                assert command.gbuf_idx in written

    def test_rows_advance_with_weight_tiles(self, channel):
        caps = caps_for_policy(channel, "dcs")
        commands = lower_gemv_to_commands(1024, 1024, channel, caps, tiles_per_row=32)
        rows = [command.row for command in commands if command.opcode is PIMOpcode.MAC]
        assert rows == sorted(rows)
        assert rows[-1] == len(rows) // 32 - (1 if len(rows) % 32 == 0 else 0)

    def test_empty_gemv(self, channel):
        assert lower_gemv_to_commands(0, 128, channel, caps_for_policy(channel, "dcs")) == []


class TestProgramExpansion:
    def test_expansion_matches_program_counts(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_fc_gemv_program(256, 128, channel, caps)
        commands = expand_program_to_commands(program, caps)
        assert len(commands) == program.n_wr_inp + program.n_mac + program.n_rd_out
        validate_stream(commands, channel)

    def test_expansion_guard_against_huge_programs(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_fc_gemv_program(8192, 8192, channel, caps)
        with pytest.raises(ValueError, match="commands"):
            expand_program_to_commands(program, caps, max_commands=1000)


class TestInstructionLowering:
    def test_triple_structure(self):
        operation = Operation(name="qkt", op_type=OpType.MATMUL, attrs={"role": "qkt"})
        instructions = lower_operator_to_instructions(operation, channel_mask=0xF, op_size=64)
        opcodes = [instruction.opcode for instruction in instructions]
        assert opcodes == [PIMOpcode.WR_INP, PIMOpcode.MAC, PIMOpcode.RD_OUT]
        assert instructions[1].op_size == 64

    def test_non_amenable_operation_rejected(self):
        operation = Operation(name="softmax", op_type=OpType.SOFTMAX)
        with pytest.raises(ValueError):
            lower_operator_to_instructions(operation, 0xF, 1)

    def test_expanded_command_count(self):
        operation = Operation(name="fc", op_type=OpType.MATMUL, attrs={"role": "fc"})
        instructions = lower_operator_to_instructions(operation, channel_mask=0b11, op_size=8)
        assert instruction_stream_commands(instructions) == (8 + 8 + 1) * 2
