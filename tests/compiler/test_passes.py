"""Tests for the compiler pass pipeline."""

import pytest

from repro.compiler.passes import (
    DPAEncodingPass,
    PartitioningPass,
    PassManager,
    compile_decoder,
)
from repro.pim.config import cent_module_config


class TestCompileDecoder:
    def test_full_pipeline_produces_instructions(self, llm_7b):
        program = compile_decoder(llm_7b, 8192, cent_module_config())
        assert program.total_instructions > 0
        assert program.partitioning == "tcp"
        assert program.dpa_enabled
        assert program.instruction_bytes > 0

    def test_tcp_targets_all_channels_hfp_targets_one(self, llm_7b):
        module = cent_module_config()
        tcp = compile_decoder(llm_7b, 8192, module, partitioning="tcp")
        hfp = compile_decoder(llm_7b, 8192, module, partitioning="hfp")
        tcp_mask = int(tcp.metadata["attention_channel_mask"])
        hfp_mask = int(hfp.metadata["attention_channel_mask"])
        assert bin(tcp_mask).count("1") == module.num_channels
        assert bin(hfp_mask).count("1") == 1

    def test_dpa_shrinks_instruction_footprint(self, llm_7b_gqa):
        module = cent_module_config()
        with_dpa = compile_decoder(llm_7b_gqa, 128 * 1024, module, dpa_enabled=True)
        without_dpa = compile_decoder(llm_7b_gqa, 128 * 1024, module, dpa_enabled=False)
        assert with_dpa.instruction_bytes < without_dpa.instruction_bytes / 100

    def test_attention_instruction_count_scales_with_kv_heads(self, llm_7b, llm_7b_gqa):
        module = cent_module_config()
        dense = compile_decoder(llm_7b, 8192, module)
        gqa = compile_decoder(llm_7b_gqa, 8192, module)
        assert len(dense.attention_instructions) == 4 * len(gqa.attention_instructions)


class TestPassManager:
    def test_invalid_partitioning_rejected(self):
        with pytest.raises(ValueError):
            PartitioningPass("diagonal", cent_module_config())

    def test_passes_run_in_order(self, llm_7b):
        from repro.compiler.ir import build_decoder_graph
        from repro.compiler.passes import CompiledProgram, PatternDetectionPass

        graph = build_decoder_graph(llm_7b, 1024)
        manager = PassManager().add(PatternDetectionPass()).add(
            DPAEncodingPass(enabled=False, context_length=1024, kv_heads=llm_7b.num_kv_heads)
        )
        program = manager.run(CompiledProgram(graph=graph))
        assert "attention_patterns" in program.metadata
        assert not program.dpa_enabled
