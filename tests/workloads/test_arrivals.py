"""Tests for the time-varying arrival processes (diurnal / burst / warp)."""

from itertools import pairwise

import numpy as np
import pytest

from repro.api.registry import ARRIVAL_PROCESSES
from repro.api.spec import ArrivalSpec, BurstSpec, WarpPhaseSpec
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import (
    burst_arrivals,
    diurnal_arrivals,
    generate_trace,
    poisson_arrivals,
    warped_replay_arrivals,
)


def _trace(n: int, seed: int = 0):
    return generate_trace(get_dataset("qmsum"), n, seed=seed)


def _arrivals_in(times, start: float, end: float) -> int:
    return sum(1 for t in times if start <= t < end)


class TestDiurnalArrivals:
    def test_deterministic_and_increasing(self):
        trace = _trace(64)
        a = diurnal_arrivals(trace, 5.0, period_s=20.0, amplitude=0.5, seed=9)
        b = diurnal_arrivals(trace, 5.0, period_s=20.0, amplitude=0.5, seed=9)
        assert a.arrival_times == b.arrival_times
        assert all(later > earlier for earlier, later in pairwise(a.arrival_times))

    def test_seed_changes_times(self):
        trace = _trace(64)
        a = diurnal_arrivals(trace, 5.0, period_s=20.0, seed=1)
        b = diurnal_arrivals(trace, 5.0, period_s=20.0, seed=2)
        assert a.arrival_times != b.arrival_times

    def test_zero_amplitude_matches_poisson_rate(self):
        # amplitude 0 is a homogeneous process: the mean gap must track
        # 1/rate like the plain Poisson helper does.
        trace = _trace(4000)
        timed = diurnal_arrivals(trace, 10.0, period_s=100.0, amplitude=0.0, seed=5)
        mean_gap = timed.last_arrival_s / len(timed)
        assert mean_gap == pytest.approx(0.1, rel=0.1)

    def test_peak_windows_denser_than_trough_windows(self):
        # period 40, phase 0: rate peaks at t = 10 (sin max) and troughs
        # at t = 30 within each cycle.  Count arrivals near peaks vs
        # troughs over many cycles.
        trace = _trace(6000)
        timed = diurnal_arrivals(trace, 10.0, period_s=40.0, amplitude=0.8, seed=3)
        times = timed.arrival_times
        peak = trough = 0
        horizon = times[-1]
        cycle = 0
        while cycle * 40.0 + 40.0 <= horizon:
            start = cycle * 40.0
            peak += _arrivals_in(times, start + 5.0, start + 15.0)
            trough += _arrivals_in(times, start + 25.0, start + 35.0)
            cycle += 1
        assert peak > 2 * trough

    def test_amplitude_bounds_enforced(self):
        trace = _trace(4)
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_arrivals(trace, 5.0, period_s=10.0, amplitude=1.5)
        with pytest.raises(ValueError, match="period_s"):
            diurnal_arrivals(trace, 5.0, period_s=0.0)


class TestBurstArrivals:
    def test_deterministic(self):
        trace = _trace(64)
        bursts = [(2.0, 1.0, 5.0)]
        a = burst_arrivals(trace, 5.0, bursts, seed=4)
        b = burst_arrivals(trace, 5.0, bursts, seed=4)
        assert a.arrival_times == b.arrival_times

    def test_burst_window_is_denser(self):
        trace = _trace(4000)
        timed = burst_arrivals(trace, 5.0, [(10.0, 10.0, 8.0)], seed=2)
        times = timed.arrival_times
        inside = _arrivals_in(times, 10.0, 20.0)
        before = _arrivals_in(times, 0.0, 10.0)
        assert inside > 4 * before

    def test_no_bursts_matches_plain_rate(self):
        trace = _trace(3000)
        timed = burst_arrivals(trace, 10.0, [], seed=5)
        mean_gap = timed.last_arrival_s / len(timed)
        assert mean_gap == pytest.approx(0.1, rel=0.1)

    def test_overlapping_bursts_rejected(self):
        trace = _trace(4)
        with pytest.raises(ValueError, match="overlap"):
            burst_arrivals(trace, 5.0, [(0.0, 5.0, 2.0), (3.0, 5.0, 3.0)])


class TestWarpedReplayArrivals:
    def test_identity_warp_is_replay(self):
        trace = _trace(5)
        times = [0.5, 1.0, 2.0, 2.5, 4.0]
        warped = warped_replay_arrivals(trace, times, [(0.0, 1.0)])
        assert warped.arrival_times == pytest.approx(times)

    def test_uniform_dilation_scales_gaps(self):
        trace = _trace(4)
        times = [0.0, 1.0, 2.0, 3.0]
        warped = warped_replay_arrivals(trace, times, [(0.0, 2.0)])
        assert warped.arrival_times == pytest.approx([0.0, 2.0, 4.0, 6.0])

    def test_piecewise_phases_compress_their_span_only(self):
        trace = _trace(4)
        times = [0.0, 1.0, 2.0, 3.0]
        # Halve time after t=2: gaps before the breakpoint are unchanged,
        # the final gap shrinks to 0.5.
        warped = warped_replay_arrivals(trace, times, [(0.0, 1.0), (2.0, 0.5)])
        assert warped.arrival_times == pytest.approx([0.0, 1.0, 2.0, 2.5])

    def test_implicit_leading_phase(self):
        trace = _trace(3)
        warped = warped_replay_arrivals(trace, [0.0, 1.0, 2.0], [(1.0, 3.0)])
        # Unit factor up to t=1, then 3x dilation.
        assert warped.arrival_times == pytest.approx([0.0, 1.0, 4.0])

    def test_invalid_phases_rejected(self):
        trace = _trace(2)
        with pytest.raises(ValueError, match="increasing"):
            warped_replay_arrivals(trace, [0.0, 1.0], [(1.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ValueError, match="factor"):
            warped_replay_arrivals(trace, [0.0, 1.0], [(0.0, 0.0)])


class TestArrivalProcessRegistry:
    def test_all_processes_registered(self):
        names = set(ARRIVAL_PROCESSES.names())
        assert {"poisson", "replay", "diurnal", "burst", "trace-warped"} <= names

    def test_poisson_process_matches_helper(self):
        trace = _trace(64)
        spec = ArrivalSpec(process="poisson", rate_rps=5.0)
        via_registry = ARRIVAL_PROCESSES.get("poisson")(trace, spec, 11)
        direct = poisson_arrivals(trace, 5.0, seed=11)
        assert via_registry.arrival_times == direct.arrival_times

    def test_diurnal_process_matches_helper(self):
        trace = _trace(64)
        spec = ArrivalSpec(
            process="diurnal", rate_rps=5.0, period_s=30.0, amplitude=0.4, phase_s=2.0
        )
        via_registry = ARRIVAL_PROCESSES.get("diurnal")(trace, spec, 7)
        direct = diurnal_arrivals(
            trace, 5.0, period_s=30.0, amplitude=0.4, phase_s=2.0, seed=7
        )
        assert via_registry.arrival_times == direct.arrival_times

    def test_burst_process_matches_helper(self):
        trace = _trace(64)
        spec = ArrivalSpec(
            process="burst",
            rate_rps=5.0,
            bursts=(BurstSpec(start_s=1.0, duration_s=2.0, multiplier=4.0),),
        )
        via_registry = ARRIVAL_PROCESSES.get("burst")(trace, spec, 13)
        direct = burst_arrivals(trace, 5.0, [(1.0, 2.0, 4.0)], seed=13)
        assert via_registry.arrival_times == direct.arrival_times

    def test_warped_process_matches_helper(self):
        trace = _trace(3)
        spec = ArrivalSpec(
            process="trace-warped",
            times=(0.0, 1.0, 2.0),
            warp=(WarpPhaseSpec(start_s=1.0, factor=2.0),),
        )
        via_registry = ARRIVAL_PROCESSES.get("trace-warped")(trace, spec, 99)
        direct = warped_replay_arrivals(trace, [0.0, 1.0, 2.0], [(1.0, 2.0)])
        assert via_registry.arrival_times == direct.arrival_times

    def test_processes_are_linear_enough(self):
        # O(n) guard: thinning must not quadratically resample.
        import time

        trace_small = _trace(2000)
        trace_large = _trace(20000, seed=1)
        start = time.perf_counter()
        diurnal_arrivals(trace_small, 50.0, period_s=10.0, seed=0)
        small = time.perf_counter() - start
        start = time.perf_counter()
        diurnal_arrivals(trace_large, 50.0, period_s=10.0, seed=0)
        large = time.perf_counter() - start
        # 10x the requests should cost well under 100x the time; the bound
        # is loose to stay robust on noisy CI boxes.
        assert large < max(50 * small, 0.5)

    def test_warp_accepts_numpy_times(self):
        trace = _trace(3)
        warped = warped_replay_arrivals(
            trace, np.asarray([0.0, 1.0, 2.0]), [(0.0, 1.0)]
        )
        assert warped.arrival_times == pytest.approx([0.0, 1.0, 2.0])
