"""Tests for the dataset statistics models (paper Table II)."""

import numpy as np
import pytest

from repro.workloads.datasets import DatasetStats, get_dataset, list_datasets, synthetic_dataset


class TestRegistry:
    def test_table2_datasets_present(self):
        names = list_datasets()
        for expected in ("qmsum", "musique", "multifieldqa", "loogle-sd"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_dataset("QMSum").name == "qmsum"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("wikitext")

    def test_table2_statistics_match_paper(self):
        qmsum = get_dataset("qmsum")
        assert qmsum.mean == 13_966
        assert qmsum.maximum == 30_456
        multifield = get_dataset("multifieldqa")
        assert multifield.suite == "LV-Eval"
        assert multifield.mean == 60_780


class TestSampling:
    def test_samples_respect_bounds(self):
        stats = get_dataset("qmsum")
        samples = stats.sample(2000, np.random.default_rng(0))
        assert samples.min() >= stats.minimum
        assert samples.max() <= stats.maximum

    def test_sample_mean_near_dataset_mean(self):
        stats = get_dataset("musique")
        samples = stats.sample(5000, np.random.default_rng(1))
        assert abs(samples.mean() - stats.mean) / stats.mean < 0.1

    def test_zero_samples(self):
        stats = get_dataset("qmsum")
        assert stats.sample(0, np.random.default_rng(0)).size == 0

    def test_clamp_to_window_restricts_maximum(self):
        stats = get_dataset("multifieldqa")
        clamped = stats.clamp_to_window(32 * 1024)
        assert clamped.maximum == 32 * 1024
        assert clamped.mean <= 32 * 1024
        samples = clamped.sample(100, np.random.default_rng(2))
        assert samples.max() <= 32 * 1024


class TestValidation:
    def test_synthetic_dataset_builder(self):
        stats = synthetic_dataset("uniform-64k", mean=64_000, std=100, minimum=63_000, maximum=65_000)
        assert stats.suite == "synthetic"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            DatasetStats(name="bad", suite="x", mean=10, std=1, minimum=20, maximum=10)
        with pytest.raises(ValueError):
            DatasetStats(name="bad", suite="x", mean=-1, std=1, minimum=1, maximum=10)
