"""Tests for request trace generation."""

import pytest

from repro.workloads.datasets import get_dataset
from repro.workloads.traces import Request, generate_trace


class TestTraceGeneration:
    def test_trace_is_reproducible(self):
        stats = get_dataset("qmsum")
        a = generate_trace(stats, 32, seed=7)
        b = generate_trace(stats, 32, seed=7)
        assert a.prompt_lengths == b.prompt_lengths

    def test_different_seeds_differ(self):
        stats = get_dataset("qmsum")
        a = generate_trace(stats, 32, seed=1)
        b = generate_trace(stats, 32, seed=2)
        assert a.prompt_lengths != b.prompt_lengths

    def test_context_window_clamping(self):
        stats = get_dataset("multifieldqa")
        trace = generate_trace(stats, 64, seed=0, context_window=32 * 1024)
        assert trace.max_prompt_tokens <= 32 * 1024

    def test_output_tokens_override(self):
        stats = get_dataset("qmsum")
        trace = generate_trace(stats, 4, seed=0, output_tokens=77)
        assert all(request.output_tokens == 77 for request in trace.requests)
        assert trace.total_output_tokens == 4 * 77

    def test_request_ids_unique_and_ordered(self):
        trace = generate_trace(get_dataset("qmsum"), 10, seed=0)
        assert [request.request_id for request in trace.requests] == list(range(10))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(get_dataset("qmsum"), 0)
        with pytest.raises(ValueError):
            Request(request_id=0, prompt_tokens=0, output_tokens=1)


class TestTraceProperties:
    def test_mean_and_final_context(self):
        trace = generate_trace(get_dataset("musique"), 16, seed=0, output_tokens=10)
        assert trace.mean_prompt_tokens == pytest.approx(
            sum(trace.prompt_lengths) / len(trace)
        )
        request = trace.requests[0]
        assert request.final_context == request.prompt_tokens + 10
