"""Tests for request trace generation."""

from itertools import pairwise

import pytest

from repro.workloads.datasets import get_dataset
from repro.workloads.traces import (
    Request,
    generate_trace,
    poisson_arrivals,
    replay_arrivals,
)


class TestTraceGeneration:
    def test_trace_is_reproducible(self):
        stats = get_dataset("qmsum")
        a = generate_trace(stats, 32, seed=7)
        b = generate_trace(stats, 32, seed=7)
        assert a.prompt_lengths == b.prompt_lengths

    def test_different_seeds_differ(self):
        stats = get_dataset("qmsum")
        a = generate_trace(stats, 32, seed=1)
        b = generate_trace(stats, 32, seed=2)
        assert a.prompt_lengths != b.prompt_lengths

    def test_context_window_clamping(self):
        stats = get_dataset("multifieldqa")
        trace = generate_trace(stats, 64, seed=0, context_window=32 * 1024)
        assert trace.max_prompt_tokens <= 32 * 1024

    def test_output_tokens_override(self):
        stats = get_dataset("qmsum")
        trace = generate_trace(stats, 4, seed=0, output_tokens=77)
        assert all(request.output_tokens == 77 for request in trace.requests)
        assert trace.total_output_tokens == 4 * 77

    def test_request_ids_unique_and_ordered(self):
        trace = generate_trace(get_dataset("qmsum"), 10, seed=0)
        assert [request.request_id for request in trace.requests] == list(range(10))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(get_dataset("qmsum"), 0)
        with pytest.raises(ValueError):
            Request(request_id=0, prompt_tokens=0, output_tokens=1)


class TestTraceProperties:
    def test_mean_and_final_context(self):
        trace = generate_trace(get_dataset("musique"), 16, seed=0, output_tokens=10)
        assert trace.mean_prompt_tokens == pytest.approx(
            sum(trace.prompt_lengths) / len(trace)
        )
        request = trace.requests[0]
        assert request.final_context == request.prompt_tokens + 10

    def test_default_arrivals_are_zero(self):
        trace = generate_trace(get_dataset("qmsum"), 4, seed=0)
        assert trace.arrival_times == [0.0] * 4
        assert trace.last_arrival_s == 0.0


class TestArrivalProcesses:
    def test_poisson_arrivals_are_increasing_and_reproducible(self):
        trace = generate_trace(get_dataset("qmsum"), 32, seed=0)
        a = poisson_arrivals(trace, rate_rps=5.0, seed=3)
        b = poisson_arrivals(trace, rate_rps=5.0, seed=3)
        assert a.arrival_times == b.arrival_times
        times = a.arrival_times
        assert all(later > earlier for earlier, later in pairwise(times))
        assert times[0] > 0.0

    def test_poisson_rate_sets_mean_gap(self):
        trace = generate_trace(get_dataset("qmsum"), 2000, seed=0)
        timed = poisson_arrivals(trace, rate_rps=10.0, seed=1)
        mean_gap = timed.last_arrival_s / len(timed)
        assert mean_gap == pytest.approx(0.1, rel=0.1)

    def test_poisson_preserves_request_payloads(self):
        trace = generate_trace(get_dataset("qmsum"), 8, seed=0, output_tokens=9)
        timed = poisson_arrivals(trace, rate_rps=1.0, seed=0)
        assert timed.prompt_lengths == trace.prompt_lengths
        assert all(request.output_tokens == 9 for request in timed.requests)
        assert timed.dataset == trace.dataset

    def test_poisson_invalid_rate_rejected(self):
        trace = generate_trace(get_dataset("qmsum"), 2, seed=0)
        with pytest.raises(ValueError):
            poisson_arrivals(trace, rate_rps=0.0)

    def test_replay_attaches_given_times(self):
        trace = generate_trace(get_dataset("qmsum"), 3, seed=0)
        replayed = replay_arrivals(trace, [0.5, 1.0, 2.0])
        assert replayed.arrival_times == [0.5, 1.0, 2.0]
        assert replayed.last_arrival_s == 2.0

    def test_replay_non_monotonic_rejected_with_indices(self):
        trace = generate_trace(get_dataset("qmsum"), 3, seed=0)
        with pytest.raises(ValueError, match=r"arrival_times\[1\].*arrival_times\[0\]"):
            replay_arrivals(trace, [0.5, 0.0, 2.0])

    def test_replay_non_monotonic_opt_out(self):
        trace = generate_trace(get_dataset("qmsum"), 3, seed=0)
        replayed = replay_arrivals(trace, [0.5, 0.0, 2.0], monotonic=False)
        assert replayed.arrival_times == [0.5, 0.0, 2.0]

    def test_replay_length_mismatch_rejected(self):
        trace = generate_trace(get_dataset("qmsum"), 3, seed=0)
        with pytest.raises(ValueError):
            replay_arrivals(trace, [0.0, 1.0])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(request_id=0, prompt_tokens=10, output_tokens=1, arrival_s=-1.0)

    def test_non_finite_arrivals_rejected(self):
        # NaN/inf arrivals (e.g. missing values in a replayed log) would
        # stall the engine's clock forever, so they must fail at build time.
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                Request(request_id=0, prompt_tokens=10, output_tokens=1, arrival_s=bad)
        trace = generate_trace(get_dataset("qmsum"), 2, seed=0)
        with pytest.raises(ValueError):
            replay_arrivals(trace, [0.0, float("nan")])


class TestMultiTurnTrace:
    @staticmethod
    def build(**overrides):
        from repro.workloads.traces import multi_turn_trace

        kwargs = dict(
            num_sessions=3,
            turns_per_session=4,
            first_prompt_tokens=100,
            followup_tokens=20,
            output_tokens=10,
            seed=5,
        )
        kwargs.update(overrides)
        return multi_turn_trace(**kwargs)

    def test_shape_and_session_tagging(self):
        trace = self.build()
        assert len(trace) == 12
        assert {request.session for request in trace.requests} == {0, 1, 2}
        # Turn-major ordering: each block of num_sessions covers all sessions.
        assert [r.session for r in trace.requests[:3]] == [0, 1, 2]

    def test_follow_up_prompts_accumulate_previous_context(self):
        trace = self.build()
        by_session: dict[int, list] = {}
        for request in trace.requests:
            by_session.setdefault(request.session, []).append(request)
        for turns in by_session.values():
            for previous, current in pairwise(turns):
                # This turn's prompt = previous full context + new input.
                expected = previous.prompt_tokens + previous.output_tokens + 20
                assert current.prompt_tokens == expected

    def test_reproducible_under_fixed_seed(self):
        a, b = self.build(seed=9), self.build(seed=9)
        assert a == b
        assert self.build(seed=10) != a

    def test_context_window_saturation(self):
        trace = self.build(turns_per_session=20, context_window=256)
        for request in trace.requests:
            assert request.prompt_tokens + request.output_tokens <= 256

    def test_output_consuming_the_window_rejected(self):
        # prompt + output <= window is unsatisfiable when the output alone
        # fills the window; the clamp must not silently emit 1-token
        # prompts that still overflow it.
        with pytest.raises(ValueError, match="context window"):
            self.build(output_tokens=96, context_window=64)

    def test_turn_gap_spaces_arrivals_in_conversation_order(self):
        trace = self.build(turn_gap_s=10.0)
        by_session: dict[int, list] = {}
        for request in trace.requests:
            by_session.setdefault(request.session, []).append(request)
        for turns in by_session.values():
            arrivals = [turn.arrival_s for turn in turns]
            assert arrivals == sorted(arrivals)
            for previous, current in pairwise(arrivals):
                assert current - previous == pytest.approx(10.0)
        # Per-session jitter keeps sessions from colliding at the same instant.
        first_turn = [turn[0].arrival_s for turn in by_session.values()]
        assert len(set(first_turn)) > 1

    def test_zero_gap_leaves_all_arrivals_at_zero(self):
        assert all(request.arrival_s == 0.0 for request in self.build().requests)

    def test_validation(self):
        for overrides in (
            {"num_sessions": 0},
            {"turns_per_session": 0},
            {"first_prompt_tokens": 0},
            {"followup_tokens": 0},
            {"output_tokens": 0},
            {"turn_gap_s": -1.0},
        ):
            with pytest.raises(ValueError):
                self.build(**overrides)


class TestFastRequestPath:
    """The O(n) bulk construction path must preserve dataclass semantics."""

    def test_fast_built_requests_equal_constructor_built(self):
        trace = generate_trace(get_dataset("qmsum"), 16, seed=3, output_tokens=24)
        rebuilt = [
            Request(
                request_id=request.request_id,
                prompt_tokens=request.prompt_tokens,
                output_tokens=request.output_tokens,
                arrival_s=request.arrival_s,
                priority=request.priority,
                session=request.session,
            )
            for request in trace.requests
        ]
        assert list(trace.requests) == rebuilt

    def test_dataclass_semantics_survive(self):
        from dataclasses import asdict, replace

        trace = poisson_arrivals(
            generate_trace(get_dataset("qmsum"), 8, seed=5), rate_rps=100.0, seed=5
        )
        request = trace.requests[3]
        clone = replace(request, priority=2)
        assert clone.priority == 2
        assert clone.prompt_tokens == request.prompt_tokens
        assert asdict(request)["arrival_s"] == request.arrival_s
        with pytest.raises(Exception):
            request.priority = 9  # still frozen

    def test_million_scale_generation_is_linear_enough(self):
        import time

        stats = get_dataset("qmsum")
        start = time.perf_counter()
        small = generate_trace(stats, 20_000, seed=1, output_tokens=8)
        small_wall = time.perf_counter() - start
        start = time.perf_counter()
        large = generate_trace(stats, 100_000, seed=1, output_tokens=8)
        large_wall = time.perf_counter() - start
        assert len(small.requests) == 20_000
        assert len(large.requests) == 100_000
        # 5x the requests should cost well under the ~25x an O(n^2) path
        # would; the generous bound keeps CI noise out of the signal.
        assert large_wall < small_wall * 15 + 0.5

    def test_poisson_overflow_guard_message(self):
        trace = generate_trace(get_dataset("qmsum"), 4, seed=0)
        with pytest.raises(ValueError, match="rate_rps must be positive"):
            poisson_arrivals(trace, rate_rps=0.0, seed=0)
